#ifndef HPA_OPS_NAIVE_BAYES_H_
#define HPA_OPS_NAIVE_BAYES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "containers/sparse_matrix.h"
#include "ops/exec_context.h"

/// \file
/// Multinomial Naive Bayes over TF/IDF sparse vectors — the first
/// supervised member of the operator family, sharing the sparse kernels
/// and the accumulator-tree reduction discipline of SparseKMeans.
///
/// Training accumulates per-class sufficient statistics (feature mass per
/// (class, term) plus document counts) in worker-local accumulators and
/// merges them with the same cluster × dimension-shard sliced
/// ParallelTreeReduce the K-means centroid merge uses. One twist makes the
/// result *bit-identical across worker counts and to a single-threaded
/// reference*: the per-(class, term) feature mass is summed in fixed-point
/// int64 — each float TF/IDF score is quantized once via
/// llround(score * 2^24) — because integer addition is exactly associative
/// and commutative, so any merge order (serial fold, flat tree, nested
/// tree, any worker count) produces the same statistics to the bit.
/// Worker-keyed *double* sums would not be (see the Accumulators comment
/// in kmeans.cc); quantization trades 2^-24 of score resolution for exact
/// order-independence, and the differential reference applies the same
/// quantization. The smoothed log-likelihoods are then computed serially
/// from the exact integer statistics.
///
/// Prediction scores class c as
///     log P(c) + Σ_t score(t, d) · log P(t | c)
/// via the shared sparse-dense Dot kernel (the same merge-join K-means'
/// distance kernel is built on), argmax with ties to the lowest class id.
/// Each document is scored independently, so the parallel loop is
/// bit-identical at any worker count.

namespace hpa::ops {

/// Fixed-point scale for feature-mass quantization: 24 fractional bits.
/// TF/IDF scores are L2-normalized (≤ 1), so quantized per-entry values
/// fit comfortably; a corpus would need ~2^39 documents to overflow the
/// int64 per-(class, term) sums.
inline constexpr double kNbFixedPointScale = 16777216.0;  // 2^24

/// Quantizes one TF/IDF score to the fixed-point grid. Shared by the
/// production trainer and the naive differential reference so both see
/// exactly the same sufficient statistics.
int64_t NbQuantize(float score);

/// Naive Bayes training options.
struct NaiveBayesOptions {
  /// Laplace/Lidstone smoothing added to every (class, term) mass.
  double alpha = 1.0;
};

/// A trained multinomial Naive Bayes model. Immutable after training;
/// safe to share across parallel chunks.
struct NaiveBayesModel {
  /// Class label strings, index = class id (lexicographically sorted).
  std::vector<std::string> labels;

  /// log P(c) per class id (document-frequency prior).
  std::vector<double> class_log_prior;

  /// log P(term | class) per class: dense rows of vocabulary dimension,
  /// same layout as the K-means centroid matrix (and serialized the same
  /// bit-exact way by the registry).
  std::vector<std::vector<float>> feature_log_prob;

  /// Vocabulary dimension the model was trained on.
  uint32_t num_features = 0;

  /// Documents actually trained on (excludes empty/unlabeled rows).
  uint64_t documents_trained = 0;

  /// Rows excluded from training: empty rows (quarantined or fully pruned
  /// upstream) and rows without a label.
  uint64_t documents_skipped = 0;

  size_t num_classes() const { return labels.size(); }

  /// Class id for `label`, or -1 if the model never saw it.
  int ClassId(std::string_view label) const;

  /// Predicts the class id for one score row: argmax of
  /// prior + Dot(row, feature_log_prob[c]), ties to the lowest class id.
  /// An all-zero row degenerates to argmax of the prior alone.
  uint32_t Predict(const containers::SparseVector& row) const;

  friend bool operator==(const NaiveBayesModel& a, const NaiveBayesModel& b) {
    return a.labels == b.labels && a.class_log_prior == b.class_log_prior &&
           a.feature_log_prob == b.feature_log_prob &&
           a.num_features == b.num_features &&
           a.documents_trained == b.documents_trained &&
           a.documents_skipped == b.documents_skipped;
  }
};

/// Trains multinomial NB on `matrix` with per-row label strings
/// (`row_labels[i]` labels row i; empty = unlabeled). Rows that are empty
/// or unlabeled are skipped — quarantined documents keep empty rows
/// upstream, so fault-policy runs train on exactly the surviving
/// documents. Fails (kInvalidArgument) when no usable labeled row exists
/// or the label vector length mismatches the matrix. Accrues the
/// "nb-train" phase on ctx.phases.
StatusOr<NaiveBayesModel> TrainNaiveBayes(
    ExecContext& ctx, const containers::SparseMatrix& matrix,
    const std::vector<std::string>& row_labels,
    const NaiveBayesOptions& options = {});

/// Parallel prediction over all rows of `matrix`; out[i] = class id for
/// row i. Accrues the "nb-predict" phase.
std::vector<uint32_t> PredictNaiveBayes(
    ExecContext& ctx, const NaiveBayesModel& model,
    const containers::SparseMatrix& matrix);

/// Bit-exact text serialization ("hpa-nb-model v1"): labels, IEEE-754
/// hex doubles for the priors, hex floats for the likelihood rows — the
/// same round-trip guarantee the registry's centroid artifact makes.
std::string SerializeNaiveBayesModel(const NaiveBayesModel& model);

/// Parses SerializeNaiveBayesModel output; `path` labels errors.
StatusOr<NaiveBayesModel> ParseNaiveBayesModel(std::string_view text,
                                               const std::string& path);

}  // namespace hpa::ops

#endif  // HPA_OPS_NAIVE_BAYES_H_
