#ifndef HPA_OPS_WORD_COUNT_H_
#define HPA_OPS_WORD_COUNT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "containers/dictionary.h"
#include "io/packed_corpus.h"
#include "parallel/parallel_ops.h"
#include "ops/exec_context.h"
#include "text/document.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"

/// \file
/// Phase 1 of TF/IDF — the paper's "input+wc" phase: read every document
/// (in parallel, §3.2), tokenize it, and collect
///   * a per-document term-frequency table (word -> tf), and
///   * a corpus-wide document-frequency table (word -> #docs containing it).
///
/// The counting loop is a single parallel loop over documents, exactly the
/// structure of the paper's Cilk implementation. The corpus-wide merge of
/// the per-worker document-frequency tables — the serial Amdahl term that
/// grows with the vocabulary while the parallel work grows with documents —
/// runs as a *parallel hash-partitioned merge* (its own "df-merge" phase):
/// every per-worker table is sharded by key hash, and shard s of the global
/// table is merged from shard s of all partials by one task. Setting
/// `ctx.serial_merge` restores the serial fold for ablation; the results
/// are byte-identical either way.

namespace hpa::ops {

/// Per-term statistics in the global dictionary. `df` accumulates during
/// word count; `id` is assigned later by the TF/IDF transform (term ids are
/// the sorted-word order, so ARFF attributes are deterministic).
struct TermStat {
  uint32_t df = 0;
  uint32_t id = 0;
};

/// Output of the word-count phase, parameterized by dictionary backend.
template <containers::DictBackend B>
struct WordCountResult {
  using TfDict = typename containers::DictFor<B, uint32_t>::type;

  /// Global table: hash-partitioned shards of backend B, so the df merge
  /// and every later vocabulary sweep can be parallelized shard-by-shard.
  using DfDict = containers::ShardedDictFor<B, TermStat>;

  /// One term-frequency table per document (kept as live dictionaries
  /// until the transform phase, as in the paper — this is what makes the
  /// backend choice a memory decision, §3.4).
  std::vector<TfDict> doc_tfs;

  /// Document names, same order as doc_tfs.
  std::vector<std::string> doc_names;

  /// Global word -> {document frequency, term id} table.
  DfDict doc_freq;

  /// Documents skipped under FaultPolicy::kRetryThenSkip (empty under
  /// kFailFast). A quarantined document keeps its slot in doc_tfs /
  /// doc_names with an empty term table, so ids and row numbering are
  /// unaffected.
  QuarantineList quarantine;

  uint64_t total_tokens = 0;

  /// Approximate heap footprint of all dictionaries (the paper's 420 MB vs
  /// 12.8 GB comparison).
  uint64_t ApproxDictBytes() const {
    uint64_t bytes = doc_freq.ApproxMemoryBytes();
    for (const TfDict& d : doc_tfs) bytes += d.ApproxMemoryBytes();
    return bytes;
  }

  size_t num_documents() const { return doc_tfs.size(); }
};

namespace wc_internal {

/// Merges the per-worker sharded df tables and token counters into
/// `result` under its own "df-merge" phase: a parallel sharded merge by
/// default, or one serial region when `ctx.serial_merge` is set. Both
/// paths visit (shard-major, worker-slot order) — byte-identical output.
template <containers::DictBackend B>
void MergeDocFrequencies(
    ExecContext& ctx,
    parallel::WorkerLocal<typename WordCountResult<B>::DfDict>& worker_df,
    parallel::WorkerLocal<uint64_t>& worker_tokens,
    WordCountResult<B>& result) {
  auto merge_entry = [](auto& dst, const std::string& word,
                        const TermStat& stat) {
    dst.FindOrInsert(std::string_view(word)).df += stat.df;
  };
  ctx.TimePhase("df-merge", [&] {
    // Rough traffic estimate: every partial entry is read once and folded
    // into the global table (key bytes + node overhead, ~64 B/entry). A
    // precise ApproxMemoryBytes() walk would cost as much as the merge.
    uint64_t entries = 0;
    worker_df.ForEach([&](auto& df) { entries += df.size(); });
    parallel::WorkHint hint;
    hint.label = "df-merge";
    hint.bytes_touched = entries * 64;
    if (ctx.serial_merge) {
      // Ablation path: the paper-era serial fold, one RunSerial region so
      // the executor clock charges it against all workers.
      ctx.executor->RunSerial(hint, [&] {
        parallel::MergeShardRange(worker_df, result.doc_freq, 0,
                                  result.doc_freq.num_shards(), merge_entry);
      });
    } else {
      parallel::ParallelShardedMerge(*ctx.executor, worker_df,
                                     result.doc_freq, hint, merge_entry);
    }
    ctx.executor->RunSerial(parallel::WorkHint{0, "token-merge"}, [&] {
      worker_tokens.ForEach(
          [&](uint64_t& tokens) { result.total_tokens += tokens; });
    });
  });
}

}  // namespace wc_internal

/// Runs word count over a packed corpus on storage. Document reads are
/// issued from inside the parallel loop (parallel input). Accrues the
/// "input+wc" and "df-merge" phases on ctx.phases.
template <containers::DictBackend B>
StatusOr<WordCountResult<B>> RunWordCount(
    ExecContext& ctx, const io::PackedCorpusReader& corpus) {
  WordCountResult<B> result;
  const size_t n = corpus.size();
  result.doc_tfs.resize(n);
  result.doc_names.resize(n);

  // Each document writes only its own error slot, so the parallel loop
  // needs no synchronization; the first failure wins after the loop.
  std::vector<Status> doc_errors(n);
  const bool skip_mode = ctx.fault_policy == FaultPolicy::kRetryThenSkip;

  parallel::WorkerLocal<typename WordCountResult<B>::DfDict> worker_df(
      *ctx.executor);
  parallel::WorkerLocal<uint64_t> worker_tokens(*ctx.executor);
  parallel::WorkerLocal<QuarantineList> worker_quarantine(*ctx.executor);

  ctx.TimePhase("input+wc", [&] {
    parallel::WorkHint hint;
    hint.bytes_touched = corpus.total_body_bytes();
    hint.label = "input+wc";
    ctx.executor->ParallelFor(
        0, n, 0, hint, [&](int worker, size_t begin, size_t end) {
          auto& df = worker_df.Get(worker);
          uint64_t& tokens = worker_tokens.Get(worker);
          std::string stem_buf;  // recycled across tokens/documents
          for (size_t i = begin; i < end; ++i) {
            if (ctx.executor->stop_requested()) return;
            auto body = corpus.ReadBody(i);
            if (!body.ok()) {
              if (skip_mode) {
                // Quarantine: record id + cause, leave the tf table empty
                // (the slot keeps the corpus numbering), keep going.
                int attempts = 1;
                if (corpus.disk() != nullptr &&
                    corpus.disk()->retry_policy().IsRetryable(body.status())) {
                  const RetryPolicy& p = corpus.disk()->retry_policy();
                  attempts = p.max_attempts < 1 ? 1 : p.max_attempts;
                }
                QuarantineList& q = worker_quarantine.Get(worker);
                q.retries += static_cast<uint64_t>(attempts - 1);
                q.Add(corpus.name(i), body.status(), attempts);
                result.doc_names[i] = corpus.name(i);
              } else {
                doc_errors[i] = body.status();
                // Fail fast: no point paying for documents whose result
                // this run will discard.
                ctx.executor->RequestStop();
              }
              continue;
            }
            result.doc_names[i] = corpus.name(i);
            auto& tf = result.doc_tfs[i];
            if (ctx.per_doc_dict_presize > 0) {
              tf.Reserve(ctx.per_doc_dict_presize);
            }
            text::ForEachToken(*body, ctx.tokenizer,
                               [&](std::string_view token) {
              if (ctx.stem_tokens) {
                stem_buf.assign(token);
                token = text::PorterStem(stem_buf);
              }
              tf.FindOrInsert(token) += 1;
              ++tokens;
            });
            // One df tick per distinct word in this document.
            tf.ForEach([&](const std::string& word, uint32_t) {
              df.FindOrInsert(std::string_view(word)).df += 1;
            });
          }
        });
  });

  // Fail fast before paying for the merge: the loop above cancelled its
  // remaining chunks, so any recorded error aborts here.
  for (const Status& s : doc_errors) {
    if (!s.ok()) return s.WithContext("word count");
  }

  wc_internal::MergeDocFrequencies<B>(ctx, worker_df, worker_tokens, result);

  // Merge per-worker quarantine lists in slot order (like the df partials),
  // then sort by id so the report order is independent of which worker
  // happened to own each document.
  for (size_t w = 0; w < worker_quarantine.size(); ++w) {
    result.quarantine.MergeFrom(
        std::move(worker_quarantine.Get(static_cast<int>(w))));
  }
  result.quarantine.SortById();
  return result;
}

/// In-memory overload: word count over an already-loaded corpus (no
/// storage reads; used by fused pipelines that already hold the text).
template <containers::DictBackend B>
WordCountResult<B> RunWordCountInMemory(ExecContext& ctx,
                                        const text::Corpus& corpus) {
  WordCountResult<B> result;
  const size_t n = corpus.size();
  result.doc_tfs.resize(n);
  result.doc_names.resize(n);

  parallel::WorkerLocal<typename WordCountResult<B>::DfDict> worker_df(
      *ctx.executor);
  parallel::WorkerLocal<uint64_t> worker_tokens(*ctx.executor);

  ctx.TimePhase("input+wc", [&] {
    parallel::WorkHint hint;
    hint.bytes_touched = corpus.TotalBytes();
    hint.label = "input+wc";
    ctx.executor->ParallelFor(
        0, n, 0, hint, [&](int worker, size_t begin, size_t end) {
          auto& df = worker_df.Get(worker);
          uint64_t& tokens = worker_tokens.Get(worker);
          std::string stem_buf;  // recycled across tokens/documents
          for (size_t i = begin; i < end; ++i) {
            result.doc_names[i] = corpus.docs[i].name;
            auto& tf = result.doc_tfs[i];
            if (ctx.per_doc_dict_presize > 0) {
              tf.Reserve(ctx.per_doc_dict_presize);
            }
            text::ForEachToken(corpus.docs[i].body, ctx.tokenizer,
                               [&](std::string_view token) {
                                 if (ctx.stem_tokens) {
                                   stem_buf.assign(token);
                                   token = text::PorterStem(stem_buf);
                                 }
                                 tf.FindOrInsert(token) += 1;
                                 ++tokens;
                               });
            tf.ForEach([&](const std::string& word, uint32_t) {
              df.FindOrInsert(std::string_view(word)).df += 1;
            });
          }
        });
  });

  wc_internal::MergeDocFrequencies<B>(ctx, worker_df, worker_tokens, result);

  return result;
}

}  // namespace hpa::ops

#endif  // HPA_OPS_WORD_COUNT_H_
