#ifndef HPA_OPS_TFIDF_H_
#define HPA_OPS_TFIDF_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "containers/sparse_matrix.h"
#include "io/arff.h"
#include "io/packed_corpus.h"
#include "io/sharded_arff.h"
#include "ops/exec_context.h"
#include "ops/word_count.h"

/// \file
/// The TF/IDF operator (§3.2): phase 1 is the parallel word count
/// (word_count.h); phase 2 scores every document with
///     tfidf(w, d) = tf(w, d) * ln(N / df(w))
/// and L2-normalizes the per-document vectors, sorted by term id.
///
/// Two forms, mirroring the paper's Figure 3:
///  * `TfidfToArff`   — the *discrete* operator: phase 2 is a single serial
///    pass that computes scores and writes them straight to a sparse ARFF
///    file ("the ARFF format does not facilitate parallel output").
///    Phases: input+wc, df-merge, tfidf-output.
///  * `TfidfInMemory` — the *fused* form: phase 2 is a parallel in-memory
///    transform producing a SparseMatrix. Phases: input+wc, df-merge,
///    transform.

namespace hpa::ops {

/// TF/IDF scoring options. Defaults reproduce the paper's plain
/// tf * ln(N/df) with L2 normalization and no vocabulary pruning.
struct TfidfOptions {
  /// Drop terms occurring in fewer than `min_df` documents (noise cut).
  uint32_t min_df = 1;

  /// Drop terms occurring in more than `max_df_ratio * N` documents
  /// (stop-word cut; 1.0 keeps everything).
  double max_df_ratio = 1.0;

  /// Use 1 + ln(tf) instead of raw tf (dampens very frequent terms).
  bool sublinear_tf = false;

  /// L2-normalize each document's score vector (the paper clusters
  /// "normalized TF/IDF scores").
  bool normalize = true;
};

/// In-memory TF/IDF output.
struct TfidfResult {
  /// One normalized score row per document; columns are term ids.
  containers::SparseMatrix matrix;

  /// Term strings, index = term id (lexicographically sorted).
  std::vector<std::string> terms;

  /// Document frequency per term id (parallel to `terms`); together with
  /// num_documents() this is the fitted model new documents can be scored
  /// against (ops/tfidf_vectorizer.h).
  std::vector<uint32_t> term_dfs;

  /// Document names, index = row.
  std::vector<std::string> doc_names;

  /// Documents skipped during word count under FaultPolicy::kRetryThenSkip
  /// (their rows are present but empty). Empty under kFailFast.
  QuarantineList quarantine;

  size_t num_documents() const { return matrix.num_rows(); }

  /// Dictionary heap footprint observed before the tables were dropped.
  uint64_t dict_bytes = 0;

  uint64_t total_tokens = 0;
};

namespace tfidf_internal {

/// Sentinel id for terms pruned by min_df/max_df_ratio.
inline constexpr uint32_t kPrunedTermId = 0xFFFFFFFFu;

/// Recursive pairwise merge of per-shard *sorted* kept-term lists into
/// `lists[lo]`, as a nested fork/join spawn tree: the two halves merge as
/// sibling tasks, then their roots merge pairwise. Hash shards hold
/// disjoint keys, so the result is exactly the sorted global vocabulary the
/// serial concat+sort produces. Replaces the O(V log V) serial sort on the
/// term-id critical path with O(V) merges of depth log(shards).
inline void MergeSortedTermLists(parallel::Executor& exec,
                                 std::vector<std::vector<std::string>>& lists,
                                 size_t lo, size_t n) {
  if (n <= 1) return;
  size_t split = 1;
  while (split * 2 < n) split *= 2;
  if (split > 1 || n - split > 1) {
    parallel::WorkHint hint;
    hint.label = "term-ids-merge";
    exec.ParallelFor(0, 2, 1, hint, [&](int, size_t b, size_t e) {
      for (size_t side = b; side < e; ++side) {
        if (side == 0) {
          MergeSortedTermLists(exec, lists, lo, split);
        } else {
          MergeSortedTermLists(exec, lists, lo + split, n - split);
        }
      }
    });
  }
  std::vector<std::string>& left = lists[lo];
  std::vector<std::string>& right = lists[lo + split];
  std::vector<std::string> merged;
  merged.reserve(left.size() + right.size());
  std::merge(std::make_move_iterator(left.begin()),
             std::make_move_iterator(left.end()),
             std::make_move_iterator(right.begin()),
             std::make_move_iterator(right.end()), std::back_inserter(merged));
  left = std::move(merged);
  right.clear();
  right.shrink_to_fit();
}

/// Assigns term ids in sorted-word order inside `wc.doc_freq` and returns
/// the sorted list of *kept* terms; pruned terms get kPrunedTermId. If
/// `dfs` is non-null it receives the document frequency per term id.
///
/// Runs the sharded-parallel vocabulary sweep by default: kept terms are
/// collected and sorted shard-by-shard in parallel, the sorted per-shard
/// lists are combined by a nested pairwise-merge spawn tree (work-stealing
/// executors overlap merges across subtrees), and ids are written back per
/// shard in a second parallel loop — each shard's task binary-searches the
/// sorted vocabulary for its own keys, so no two tasks touch the same
/// shard. `ctx.flat_parallelism` replaces the merge tree with the serial
/// concat+sort between the two shard loops; `ctx.serial_merge` selects the
/// paper-era single serial pass. All paths produce identical ids (global
/// lexicographic order).
template <containers::DictBackend B>
std::vector<std::string> AssignTermIds(ExecContext& ctx,
                                       WordCountResult<B>& wc,
                                       const TfidfOptions& options,
                                       std::vector<uint32_t>* dfs = nullptr) {
  const uint32_t max_df = static_cast<uint32_t>(
      options.max_df_ratio * static_cast<double>(wc.num_documents()));
  auto keep = [&](const TermStat& stat) {
    return stat.df >= options.min_df && stat.df <= max_df;
  };

  std::vector<std::string> terms;

  if (ctx.serial_merge) {
    // Ablation path: one serial region doing collect + sort + write-back.
    ctx.executor->RunSerial(parallel::WorkHint{0, "term-ids"}, [&] {
      terms.reserve(wc.doc_freq.size());
      wc.doc_freq.ForEach([&](const std::string& word, const TermStat& stat) {
        if (keep(stat)) terms.push_back(word);
      });
      std::sort(terms.begin(), terms.end());
      wc.doc_freq.ForEach([&](const std::string& word, const TermStat& stat) {
        if (!keep(stat)) {
          // ForEach hands out const refs; fix up through the mutable handle.
          wc.doc_freq.FindOrInsert(std::string_view(word)).id = kPrunedTermId;
        }
      });
      if (dfs != nullptr) dfs->resize(terms.size());
      for (uint32_t id = 0; id < terms.size(); ++id) {
        TermStat& stat =
            wc.doc_freq.FindOrInsert(std::string_view(terms[id]));
        stat.id = id;
        if (dfs != nullptr) (*dfs)[id] = stat.df;
      }
    });
    return terms;
  }

  const size_t num_shards = wc.doc_freq.num_shards();
  const bool nested = !ctx.flat_parallelism;

  // Pass 1 (parallel over shards): collect each shard's kept terms. On the
  // nested path each shard also sorts its own list inside the task, feeding
  // the merge tree below.
  std::vector<std::vector<std::string>> shard_terms(num_shards);
  parallel::WorkHint collect_hint;
  collect_hint.label = "term-ids-collect";
  ctx.executor->ParallelFor(
      0, num_shards, 0, collect_hint, [&](int, size_t b, size_t e) {
        for (size_t s = b; s < e; ++s) {
          wc.doc_freq.shard(s).ForEach(
              [&](const std::string& word, const TermStat& stat) {
                if (keep(stat)) shard_terms[s].push_back(word);
              });
          if (nested) std::sort(shard_terms[s].begin(), shard_terms[s].end());
        }
      });

  if (nested) {
    // Ordering step, work-stealing form: pairwise sorted-merge spawn tree
    // over the per-shard lists. Shards hold disjoint keys, so this yields
    // exactly the global lexicographic order of the serial sort — but the
    // O(V log V) serial comparison sort is gone from the critical path.
    tfidf_internal::MergeSortedTermLists(*ctx.executor, shard_terms, 0,
                                         num_shards);
    terms = std::move(shard_terms[0]);
  } else {
    // Flat ablation path (--flat-parallelism): serial ordering step —
    // concatenate and sort the global vocabulary between the two shard
    // loops, the shape the flat executor contract forced. O(V log V) over
    // V strings on the calling thread.
    ctx.executor->RunSerial(parallel::WorkHint{0, "term-ids-sort"}, [&] {
      size_t total = 0;
      for (const auto& st : shard_terms) total += st.size();
      terms.reserve(total);
      for (auto& st : shard_terms) {
        for (auto& word : st) terms.push_back(std::move(word));
        st.clear();
      }
      std::sort(terms.begin(), terms.end());
    });
  }

  // Pass 2 (parallel over shards): write ids back. Each task mutates only
  // its own shards, and each kept term's global id comes from a binary
  // search of the sorted vocabulary — race-free, deterministic.
  if (dfs != nullptr) dfs->resize(terms.size());
  parallel::WorkHint assign_hint;
  assign_hint.label = "term-ids-assign";
  ctx.executor->ParallelFor(
      0, num_shards, 0, assign_hint, [&](int, size_t b, size_t e) {
        for (size_t s = b; s < e; ++s) {
          auto& shard = wc.doc_freq.shard(s);
          shard.ForEach([&](const std::string& word, const TermStat& stat) {
            // ForEach hands out const refs; values are fixed up through the
            // mutable handle (key exists, so no structural change).
            TermStat& mstat = shard.FindOrInsert(std::string_view(word));
            if (!keep(stat)) {
              mstat.id = kPrunedTermId;
              return;
            }
            auto it = std::lower_bound(terms.begin(), terms.end(), word);
            const uint32_t id =
                static_cast<uint32_t>(it - terms.begin());
            mstat.id = id;
            if (dfs != nullptr) (*dfs)[id] = stat.df;
          });
        }
      });
  return terms;
}

/// Builds the sparse score row for one document into `row`, using
/// `scratch` for unsorted (id, score) pairs. Both are recycled across
/// calls (the paper's "no new objects" discipline).
template <containers::DictBackend B>
void BuildScoreRow(const WordCountResult<B>& wc, size_t doc,
                   const TfidfOptions& options,
                   std::vector<std::pair<uint32_t, float>>& scratch,
                   containers::SparseVector& row) {
  scratch.clear();
  row.Clear();
  const double n_docs = static_cast<double>(wc.num_documents());
  wc.doc_tfs[doc].ForEach([&](const std::string& word, uint32_t tf) {
    const TermStat* stat = wc.doc_freq.Find(std::string_view(word));
    // Every word in a document is in the global table by construction.
    if (stat->id == kPrunedTermId) return;
    double weight = options.sublinear_tf
                        ? 1.0 + std::log(static_cast<double>(tf))
                        : static_cast<double>(tf);
    double idf = std::log(n_docs / static_cast<double>(stat->df));
    scratch.emplace_back(stat->id, static_cast<float>(weight * idf));
  });
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  row.Reserve(scratch.size());
  for (const auto& [id, score] : scratch) row.PushBack(id, score);
  if (options.normalize) row.NormalizeL2();
}

}  // namespace tfidf_internal

/// Fused-form transform applied to an existing word-count result:
/// the "transform" phase of Figures 3 and 4.
template <containers::DictBackend B>
TfidfResult TfidfTransformT(ExecContext& ctx, WordCountResult<B> wc,
                            const TfidfOptions& options = {}) {
  TfidfResult result;
  result.total_tokens = wc.total_tokens;
  result.dict_bytes = wc.ApproxDictBytes();
  result.quarantine = std::move(wc.quarantine);

  ctx.TimePhase("transform", [&] {
    // Term-id assignment: sharded-parallel vocabulary sweeps around one
    // serial sort (or fully serial with ctx.serial_merge); it issues its
    // own executor regions, so the clock charges it either way.
    result.terms =
        tfidf_internal::AssignTermIds(ctx, wc, options, &result.term_dfs);
    ctx.executor->RunSerial(parallel::WorkHint{0, "transform-setup"}, [&] {
      result.matrix.num_cols = static_cast<uint32_t>(result.terms.size());
      result.matrix.rows.resize(wc.num_documents());
    });
    result.doc_names = std::move(wc.doc_names);

    parallel::WorkerLocal<std::vector<std::pair<uint32_t, float>>> scratch(
        *ctx.executor);

    parallel::WorkHint hint;
    // The transform's memory traffic is dominated by walking the
    // dictionaries; this is what saturates bandwidth for bloated backends
    // (Figure 4's u-map scaling collapse).
    hint.bytes_touched = result.dict_bytes;
    hint.label = "transform";
    ctx.executor->ParallelFor(
        0, wc.num_documents(), 0, hint,
        [&](int worker, size_t begin, size_t end) {
          auto& pairs = scratch.Get(worker);
          for (size_t i = begin; i < end; ++i) {
            tfidf_internal::BuildScoreRow(wc, i, options, pairs,
                                          result.matrix.rows[i]);
          }
        });
  });
  return result;
}

/// Fused-form TF/IDF over a packed corpus: parallel input+wc, then a
/// parallel in-memory transform. Statically parameterized on the
/// dictionary backend.
template <containers::DictBackend B>
StatusOr<TfidfResult> TfidfInMemoryT(ExecContext& ctx,
                                     const io::PackedCorpusReader& corpus,
                                     const TfidfOptions& options = {}) {
  HPA_ASSIGN_OR_RETURN(auto wc, RunWordCount<B>(ctx, corpus));
  return TfidfTransformT<B>(ctx, std::move(wc), options);
}

/// Discrete-form TF/IDF: parallel input+wc, then one serial pass that
/// scores documents and streams them to sparse ARFF at `arff_path` on
/// ctx.scratch_disk. Phases: "input+wc", "df-merge", "tfidf-output".
template <containers::DictBackend B>
Status TfidfToArffT(ExecContext& ctx, const io::PackedCorpusReader& corpus,
                    const std::string& arff_path,
                    const TfidfOptions& options = {}) {
  HPA_ASSIGN_OR_RETURN(auto wc, RunWordCount<B>(ctx, corpus));
  if (ctx.quarantine != nullptr) {
    // The discrete form's result is the file, so the word-count quarantine
    // would otherwise be dropped on the floor; surface it to the workflow.
    ctx.quarantine->MergeFrom(std::move(wc.quarantine));
  }

  // Device-aware output: the serial single-file pass below exists because
  // "the ARFF format does not facilitate parallel output" — but on a
  // multi-channel scratch device that format choice, not the device, is
  // the bottleneck. There the operator writes the sharded-ARFF v2 layout
  // instead (one shard per channel, parallel transform + parallel shard
  // writes, manifest as commit record); downstream readers dispatch on
  // the manifest's presence, so the switch is transparent.
  if (ctx.scratch_disk != nullptr &&
      ctx.scratch_disk->options().channels > 1) {
    Status status;
    ctx.TimePhase("tfidf-output", [&] {
      std::vector<std::string> terms =
          tfidf_internal::AssignTermIds(ctx, wc, options);
      // Rows are scored *inside* each shard's write loop (per-worker
      // scratch recycled row to row), so the scoring region streams
      // straight to the device and the full SparseMatrix never exists —
      // peak memory is the dictionaries plus one 64 KiB chunk per shard.
      // Bytes on disk are identical to the score-then-write pass.
      struct RowScratch {
        std::vector<std::pair<uint32_t, float>> pairs;
        containers::SparseVector row;
      };
      parallel::WorkerLocal<RowScratch> scratch(*ctx.executor);
      parallel::WorkHint hint;
      hint.bytes_touched = wc.ApproxDictBytes();
      hint.label = "tfidf-output-rows";
      status = io::WriteShardedArffRows(
          ctx.scratch_disk, ctx.executor, arff_path, "tfidf", terms,
          wc.num_documents(), ctx.scratch_disk->options().channels,
          [&](int worker, size_t i) -> const containers::SparseVector& {
            RowScratch& s = scratch.Get(worker);
            tfidf_internal::BuildScoreRow(wc, i, options, s.pairs, s.row);
            return s.row;
          },
          hint);
    });
    return status;
  }

  Status status;
  ctx.TimePhase("tfidf-output", [&] {
    // Term-id assignment runs its own (possibly parallel) regions; the
    // ARFF streaming below stays one serial region, as the format demands.
    std::vector<std::string> terms =
        tfidf_internal::AssignTermIds(ctx, wc, options);
    ctx.executor->RunSerial(parallel::WorkHint{0, "tfidf-output"}, [&] {
      status = [&]() -> Status {
        HPA_ASSIGN_OR_RETURN(auto writer,
                             ctx.scratch_disk->OpenWriter(arff_path));

        std::string chunk;
        chunk.reserve(1 << 16);
        chunk += "% generated by hpa tfidf\n@relation tfidf\n";
        for (const std::string& term : terms) {
          chunk += "@attribute ";
          chunk += term;
          chunk += " numeric\n";
          if (chunk.size() >= (1 << 16)) {
            HPA_RETURN_IF_ERROR(writer->Append(chunk));
            chunk.clear();
          }
        }
        chunk += "@data\n";

        std::vector<std::pair<uint32_t, float>> scratch;
        containers::SparseVector row;
        for (size_t i = 0; i < wc.num_documents(); ++i) {
          tfidf_internal::BuildScoreRow(wc, i, options, scratch, row);
          chunk += '{';
          for (size_t k = 0; k < row.nnz(); ++k) {
            if (k > 0) chunk += ',';
            AppendUint(chunk, row.id_at(k));
            chunk += ' ';
            AppendDouble(chunk, static_cast<double>(row.value_at(k)));
          }
          chunk += "}\n";
          if (chunk.size() >= (1 << 16)) {
            HPA_RETURN_IF_ERROR(writer->Append(chunk));
            chunk.clear();
          }
        }
        HPA_RETURN_IF_ERROR(writer->Append(chunk));
        return writer->Close();
      }();
    });
  });
  return status;
}

/// Runtime-dispatched forms (backend chosen by ctx.dict_backend).
StatusOr<TfidfResult> TfidfInMemory(ExecContext& ctx,
                                    const io::PackedCorpusReader& corpus,
                                    const TfidfOptions& options = {});
Status TfidfToArff(ExecContext& ctx, const io::PackedCorpusReader& corpus,
                   const std::string& arff_path,
                   const TfidfOptions& options = {});

/// Reads a TF/IDF ARFF intermediate back in (the discrete workflow's
/// "kmeans-input" phase; serial by format design).
StatusOr<containers::SparseMatrix> ReadTfidfArff(ExecContext& ctx,
                                                 const std::string& arff_path);

}  // namespace hpa::ops

#endif  // HPA_OPS_TFIDF_H_
