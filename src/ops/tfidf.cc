#include "ops/tfidf.h"

namespace hpa::ops {

StatusOr<TfidfResult> TfidfInMemory(ExecContext& ctx,
                                    const io::PackedCorpusReader& corpus,
                                    const TfidfOptions& options) {
  return containers::DispatchDictBackend(
      ctx.dict_backend,
      [&](auto tag) { return TfidfInMemoryT<tag()>(ctx, corpus, options); });
}

Status TfidfToArff(ExecContext& ctx, const io::PackedCorpusReader& corpus,
                   const std::string& arff_path,
                   const TfidfOptions& options) {
  return containers::DispatchDictBackend(ctx.dict_backend, [&](auto tag) {
    return TfidfToArffT<tag()>(ctx, corpus, arff_path, options);
  });
}

StatusOr<containers::SparseMatrix> ReadTfidfArff(
    ExecContext& ctx, const std::string& arff_path) {
  StatusOr<containers::SparseMatrix> result =
      Status::Internal("kmeans-input never ran");

  // A sharded intermediate announces itself by its manifest (the commit
  // record); read it back with the parallel multi-shard path, honoring
  // the run's fault policy. Otherwise fall through to the serial
  // single-file parse the format classically demands.
  if (ctx.scratch_disk != nullptr &&
      ctx.scratch_disk->Exists(arff_path + ".manifest")) {
    ctx.TimePhase("kmeans-input", [&] {
      auto sharded = io::ReadShardedArff(ctx.scratch_disk, ctx.executor,
                                         arff_path, ctx.fault_policy);
      if (!sharded.ok()) {
        result = sharded.status();
        return;
      }
      if (ctx.quarantine != nullptr) {
        ctx.quarantine->MergeFrom(std::move(sharded->quarantine));
      }
      result = std::move(sharded->data);
    });
    return result;
  }

  ctx.TimePhase("kmeans-input", [&] {
    ctx.executor->RunSerial(parallel::WorkHint{0, "kmeans-input"}, [&] {
      auto rel = io::ReadSparseArff(ctx.scratch_disk, arff_path);
      if (!rel.ok()) {
        result = rel.status();
      } else {
        result = std::move(rel->data);
      }
    });
  });
  return result;
}

}  // namespace hpa::ops
