#include "ops/tfidf.h"

namespace hpa::ops {

StatusOr<TfidfResult> TfidfInMemory(ExecContext& ctx,
                                    const io::PackedCorpusReader& corpus,
                                    const TfidfOptions& options) {
  return containers::DispatchDictBackend(
      ctx.dict_backend,
      [&](auto tag) { return TfidfInMemoryT<tag()>(ctx, corpus, options); });
}

Status TfidfToArff(ExecContext& ctx, const io::PackedCorpusReader& corpus,
                   const std::string& arff_path,
                   const TfidfOptions& options) {
  return containers::DispatchDictBackend(ctx.dict_backend, [&](auto tag) {
    return TfidfToArffT<tag()>(ctx, corpus, arff_path, options);
  });
}

StatusOr<containers::SparseMatrix> ReadTfidfArff(
    ExecContext& ctx, const std::string& arff_path) {
  StatusOr<containers::SparseMatrix> result =
      Status::Internal("kmeans-input never ran");
  ctx.TimePhase("kmeans-input", [&] {
    ctx.executor->RunSerial(parallel::WorkHint{0, "kmeans-input"}, [&] {
      auto rel = io::ReadSparseArff(ctx.scratch_disk, arff_path);
      if (!rel.ok()) {
        result = rel.status();
      } else {
        result = std::move(rel->data);
      }
    });
  });
  return result;
}

}  // namespace hpa::ops
