#ifndef HPA_OPS_STREAMING_H_
#define HPA_OPS_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/corpus_window.h"
#include "io/packed_corpus.h"
#include "ops/exec_context.h"
#include "ops/kmeans.h"
#include "ops/tfidf.h"

/// \file
/// Semi-external TF/IDF → K-means: the corpus streams through bounded
/// windows (io/corpus_window.h) and the full SparseMatrix never exists.
///
/// Pass structure:
///  * StreamingTfidfFit — one windowed pass accumulating the global
///    document-frequency table through the ShardedDict merge discipline
///    (per-worker partials persist across windows; df increments are
///    order-insensitive integers), then the standard sorted term-id
///    assignment. The result is a compact model: sorted vocabulary +
///    per-term df — O(vocabulary), not O(corpus).
///  * StreamingSparseKMeans — Lloyd iterations that re-score each window's
///    documents against the model on the fly. Scoring is deterministic
///    (same bytes → same floats), so re-derived rows are bit-identical to
///    the materialized matrix's rows, and the assignment step can reuse
///    the in-memory kernel verbatim: Hamerly bounds persist per document
///    across windows and iterations, accumulator merges run once per
///    iteration over the same fixed slicing, and the inertia reduces over
///    the same global chunk grid (chunks that span a window boundary
///    resume their partial sum, preserving the in-memory addition order).
///
/// The bit-identity bar: assignments, centroids, and inertia_history match
/// ops::SparseKMeans over ops::TfidfInMemory exactly, at every worker
/// count and window size (exit-enforced in bench/ablation_outofcore).

namespace hpa::ops {

/// Knobs for the streaming operators.
struct StreamingOptions {
  /// Window payload budget in bytes; resident corpus bytes stay below
  /// 2x this (current window + one prefetched). 0 = one corpus-wide window.
  uint64_t window_bytes = 1 << 20;

  /// Issue window w+1's read while window w computes (the async lane).
  bool prefetch = true;

  /// Test hook: fail with kInternal after this many windows have been
  /// acquired (simulates a crash mid-stream, deterministically). -1 = off.
  int fail_after_windows = -1;
};

/// The fitted TF/IDF model a streaming pass leaves behind instead of a
/// matrix: everything pass 2 needs to re-score any document, plus the
/// provenance downstream operators need to re-open the corpus.
struct StreamingTfidfModel {
  /// Sorted kept vocabulary; index = term id.
  std::vector<std::string> terms;

  /// Document frequency per term id (parallel to `terms`).
  std::vector<uint32_t> term_dfs;

  /// Document names, index = corpus document index.
  std::vector<std::string> doc_names;

  /// 1 for documents quarantined during the fit pass (their rows are
  /// empty); pass 2 treats them as empty without re-reading.
  std::vector<uint8_t> doc_failed;

  /// Documents skipped under FaultPolicy::kRetryThenSkip.
  QuarantineList quarantine;

  uint64_t total_tokens = 0;

  /// Heap footprint of the global df table before it was dropped (the
  /// per-document tables never all live at once in streaming mode).
  uint64_t dict_bytes = 0;

  size_t num_docs = 0;

  /// Corpus file (relative to the corpus disk) the model was fitted on;
  /// downstream streaming consumers re-open it from here.
  std::string corpus_path;

  /// Scoring options the fit used; pass 2 must re-score with the same.
  TfidfOptions options;

  /// Window/prefetch configuration carried to downstream passes.
  uint64_t window_bytes = 0;
  bool prefetch = true;
};

/// Fits the TF/IDF model in one windowed pass over `corpus` without
/// materializing any matrix. Phases: "input+wc", "df-merge", "transform"
/// (term-id assignment), with prefetch counters on "input+wc".
/// Dispatches on ctx.dict_backend. `stats`, when non-null, receives the
/// accumulated window/prefetch statistics.
StatusOr<StreamingTfidfModel> StreamingTfidfFit(
    ExecContext& ctx, const io::PackedCorpusReader& corpus,
    const TfidfOptions& options = {}, const StreamingOptions& sopts = {},
    io::PrefetchStats* stats = nullptr);

/// Lloyd K-means over windowed re-scored rows; bit-identical to
/// SparseKMeans over the materialized matrix (see file comment).
/// Restrictions: KMeansInit::kPlusPlus is rejected (it needs full-corpus
/// distance passes before iteration 0), and validate_bounds is ignored.
/// Phases: "kmeans", with prefetch counters attached.
StatusOr<KMeansResult> StreamingSparseKMeans(
    ExecContext& ctx, const StreamingTfidfModel& model,
    const io::PackedCorpusReader& corpus, const KMeansOptions& options = {},
    const StreamingOptions& sopts = {}, io::PrefetchStats* stats = nullptr);

namespace streaming_internal {

/// Adds the window/prefetch counters to `phase` on `phases` (no-op when
/// null): windows_fetched / windows_prefetched / bytes_read_ahead /
/// stall_ns / overlap_permille / high_water_bytes.
void AddPrefetchCounters(PhaseTimer* phases, const std::string& phase,
                         const io::PrefetchStats& stats);

/// Scores one document body against the fitted model, producing exactly
/// the row tfidf_internal::BuildScoreRow would have produced: tokenize
/// (with the context's tokenizer/stemmer), count tf, then per distinct
/// term look up the sorted vocabulary — absent terms were pruned. The
/// tf table, pair scratch, and stem buffer are caller-recycled.
void ScoreDocument(const ExecContext& ctx, const StreamingTfidfModel& model,
                   std::string_view body,
                   containers::OpenHashMap<std::string, uint32_t>& tf,
                   std::vector<std::pair<uint32_t, float>>& scratch,
                   std::string& stem_buf, containers::SparseVector& row);

}  // namespace streaming_internal

}  // namespace hpa::ops

#endif  // HPA_OPS_STREAMING_H_
