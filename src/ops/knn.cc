#include "ops/knn.h"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "common/string_util.h"
#include "parallel/parallel_ops.h"

namespace hpa::ops {

namespace {

bool ParseHexU32(std::string_view s, uint32_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, /*base=*/16);
  if (ec != std::errc() || ptr != s.data() + s.size() || v > 0xFFFFFFFFull) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

/// Heap order: the WORST candidate (larger distance, then larger row) at
/// the top, so a better arrival replaces it in O(log k). Exact double
/// comparisons — no epsilon — keep the selected set a pure function of
/// the data, independent of scan chunking.
bool WorseThan(const KnnNeighbor& a, const KnnNeighbor& b) {
  if (a.distance != b.distance) return a.distance > b.distance;
  return a.row > b.row;
}

/// Comparator handed to the std heap functions, which keep the
/// comparator's MAXIMUM at the front: ordering candidates better-than is
/// what puts the worst one on top.
bool BetterThan(const KnnNeighbor& a, const KnnNeighbor& b) {
  return WorseThan(b, a);
}

}  // namespace

StatusOr<KnnModel> TrainKnn(ExecContext& ctx,
                            const containers::SparseMatrix& matrix,
                            const std::vector<std::string>& row_labels,
                            const KnnOptions& options) {
  if (row_labels.size() != matrix.num_rows()) {
    return Status::InvalidArgument(StrFormat(
        "knn: %zu labels for %zu rows", row_labels.size(),
        matrix.num_rows()));
  }
  if (options.k < 1) {
    return Status::InvalidArgument("knn: k must be >= 1");
  }
  KnnModel model;
  model.k = options.k;
  ctx.TimePhase("knn-train", [&] {
    const size_t n = matrix.num_rows();
    ctx.executor->RunSerial(parallel::WorkHint{0, "knn-train"}, [&] {
      std::vector<std::string> labels;
      for (size_t i = 0; i < n; ++i) {
        if (row_labels[i].empty() || matrix.rows[i].empty()) continue;
        labels.push_back(row_labels[i]);
      }
      std::sort(labels.begin(), labels.end());
      labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
      model.labels = std::move(labels);
      model.train.num_cols = matrix.num_cols;
      for (size_t i = 0; i < n; ++i) {
        if (row_labels[i].empty() || matrix.rows[i].empty()) {
          ++model.documents_skipped;
          continue;
        }
        auto it = std::lower_bound(model.labels.begin(), model.labels.end(),
                                   row_labels[i]);
        model.row_class.push_back(
            static_cast<uint32_t>(it - model.labels.begin()));
        model.train.rows.push_back(matrix.rows[i]);
        model.row_sq.push_back(matrix.rows[i].SquaredL2Norm());
      }
    });
  });
  if (model.train.rows.empty()) {
    return Status::InvalidArgument(
        "knn: no labeled non-empty training rows (is the corpus labeled?)");
  }
  return model;
}

uint32_t PredictKnnRow(const KnnModel& model,
                       const containers::SparseVector& row,
                       std::vector<KnnNeighbor>& neighbors) {
  neighbors.clear();
  const size_t n = model.train.num_rows();
  const size_t k = std::min<size_t>(static_cast<size_t>(model.k), n);
  const double q_sq = row.SquaredL2Norm();
  // Ascending-row scan with a bounded worst-at-top heap: the kept set is
  // "the k smallest (distance, row) pairs", a total order no scan order
  // or worker count can change.
  for (size_t t = 0; t < n; ++t) {
    KnnNeighbor cand{q_sq - 2.0 * Dot(row, model.train.rows[t]) +
                         model.row_sq[t],
                     static_cast<uint32_t>(t)};
    if (neighbors.size() < k) {
      neighbors.push_back(cand);
      std::push_heap(neighbors.begin(), neighbors.end(), BetterThan);
    } else if (WorseThan(neighbors.front(), cand)) {
      std::pop_heap(neighbors.begin(), neighbors.end(), BetterThan);
      neighbors.back() = cand;
      std::push_heap(neighbors.begin(), neighbors.end(), BetterThan);
    }
  }
  // Majority vote over the kept neighbors; ties to the lowest class id.
  std::vector<uint32_t> votes(model.num_classes(), 0);
  for (const KnnNeighbor& nb : neighbors) ++votes[model.row_class[nb.row]];
  uint32_t best = 0;
  for (uint32_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

std::vector<uint32_t> PredictKnn(ExecContext& ctx, const KnnModel& model,
                                 const containers::SparseMatrix& matrix) {
  std::vector<uint32_t> out(matrix.num_rows(), 0);
  ctx.TimePhase("knn-predict", [&] {
    // One neighbor buffer per worker, recycled across the documents of a
    // chunk (capacity stays at k after the first query).
    parallel::WorkerLocal<std::vector<KnnNeighbor>> scratch(*ctx.executor);
    parallel::WorkHint hint;
    hint.label = "knn-predict";
    hint.bytes_touched =
        model.train.ApproxMemoryBytes() + matrix.ApproxMemoryBytes();
    ctx.executor->ParallelFor(
        0, matrix.num_rows(), 0, hint,
        [&](int worker, size_t begin, size_t end) {
          auto& neighbors = scratch.Get(worker);
          for (size_t i = begin; i < end; ++i) {
            out[i] = PredictKnnRow(model, matrix.rows[i], neighbors);
          }
        });
  });
  return out;
}

std::string SerializeKnnModel(const KnnModel& model) {
  std::string out = "hpa-knn-model v1\nclasses ";
  AppendUint(out, model.labels.size());
  out += "\nrows ";
  AppendUint(out, model.train.num_rows());
  out += "\ncols ";
  AppendUint(out, model.train.num_cols);
  out += "\nk ";
  AppendUint(out, static_cast<uint64_t>(model.k));
  out += "\nskipped ";
  AppendUint(out, model.documents_skipped);
  out += '\n';
  for (const std::string& label : model.labels) {
    out += "label ";
    out += label;
    out += '\n';
  }
  for (size_t r = 0; r < model.train.num_rows(); ++r) {
    const containers::SparseVector& row = model.train.rows[r];
    out += "row ";
    AppendUint(out, model.row_class[r]);
    for (size_t e = 0; e < row.nnz(); ++e) {
      uint32_t bits = 0;
      float v = row.value_at(e);
      std::memcpy(&bits, &v, sizeof(bits));
      out += ' ';
      AppendUint(out, row.id_at(e));
      out += ':';
      out += StrFormat("%08x", bits);
    }
    out += '\n';
  }
  return out;
}

StatusOr<KnnModel> ParseKnnModel(std::string_view text,
                                 const std::string& path) {
  std::vector<std::string_view> lines = Split(text, '\n');
  if (lines.size() < 6 || Trim(lines[0]) != "hpa-knn-model v1") {
    return Status::Corruption("bad knn-model header in " + path);
  }
  int64_t classes = 0, rows = 0, cols = 0, k = 0, skipped = 0;
  if (!StartsWith(lines[1], "classes ") ||
      !ParseInt64(lines[1].substr(8), &classes) || classes < 1 ||
      !StartsWith(lines[2], "rows ") ||
      !ParseInt64(lines[2].substr(5), &rows) || rows < 1 ||
      !StartsWith(lines[3], "cols ") ||
      !ParseInt64(lines[3].substr(5), &cols) || cols < 0 ||
      !StartsWith(lines[4], "k ") || !ParseInt64(lines[4].substr(2), &k) ||
      k < 1 || !StartsWith(lines[5], "skipped ") ||
      !ParseInt64(lines[5].substr(8), &skipped) || skipped < 0) {
    return Status::Corruption("bad knn-model counts in " + path);
  }
  const size_t c_count = static_cast<size_t>(classes);
  const size_t r_count = static_cast<size_t>(rows);
  if (lines.size() < 6 + c_count + r_count) {
    return Status::Corruption("truncated knn-model in " + path);
  }
  KnnModel model;
  model.k = static_cast<int>(k);
  model.documents_skipped = static_cast<uint64_t>(skipped);
  model.train.num_cols = static_cast<uint32_t>(cols);
  model.labels.reserve(c_count);
  for (size_t c = 0; c < c_count; ++c) {
    std::string_view line = lines[6 + c];
    if (!StartsWith(line, "label ")) {
      return Status::Corruption("bad knn-model label line in " + path);
    }
    model.labels.emplace_back(Trim(line.substr(6)));
  }
  model.row_class.reserve(r_count);
  model.train.rows.reserve(r_count);
  model.row_sq.reserve(r_count);
  for (size_t r = 0; r < r_count; ++r) {
    std::string_view line = Trim(lines[6 + c_count + r]);
    if (!StartsWith(line, "row ")) {
      return Status::Corruption("bad knn-model row line in " + path);
    }
    std::vector<std::string_view> words = Split(line.substr(4), ' ');
    if (words.empty()) {
      return Status::Corruption("bad knn-model row line in " + path);
    }
    int64_t cls = 0;
    if (!ParseInt64(words[0], &cls) || cls < 0 ||
        cls >= static_cast<int64_t>(c_count)) {
      return Status::Corruption("bad knn-model row class in " + path);
    }
    model.row_class.push_back(static_cast<uint32_t>(cls));
    containers::SparseVector row;
    row.Reserve(words.size() - 1);
    for (size_t w = 1; w < words.size(); ++w) {
      size_t colon = words[w].find(':');
      int64_t id = 0;
      uint32_t bits = 0;
      if (colon == std::string_view::npos ||
          !ParseInt64(words[w].substr(0, colon), &id) || id < 0 ||
          id >= cols || !ParseHexU32(words[w].substr(colon + 1), &bits)) {
        return Status::Corruption("bad knn-model row entry in " + path);
      }
      float v = 0.0f;
      std::memcpy(&v, &bits, sizeof(v));
      row.PushBack(static_cast<uint32_t>(id), v);
    }
    model.row_sq.push_back(row.SquaredL2Norm());
    model.train.rows.push_back(std::move(row));
  }
  return model;
}

}  // namespace hpa::ops
