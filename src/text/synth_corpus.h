#ifndef HPA_TEXT_SYNTH_CORPUS_H_
#define HPA_TEXT_SYNTH_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "text/document.h"

/// \file
/// Synthetic corpus generation calibrated to the paper's Table 1.
///
/// The paper evaluates on two private-ish corpora ("Mix" and the NSF
/// Research Award Abstracts); we substitute deterministic synthetic corpora
/// whose *statistics* match Table 1 — document count, total bytes, distinct
/// word count — with a Zipf-distributed vocabulary and log-normally
/// distributed document lengths, which is what the operators' performance
/// actually depends on (hash/tree dictionary sizes, tokens per document,
/// sparse vector densities).

namespace hpa::text {

/// Statistical profile of a corpus to generate.
struct CorpusProfile {
  std::string name;
  uint64_t num_documents = 0;
  uint64_t target_bytes = 0;
  uint64_t target_distinct_words = 0;

  /// Zipf skew of word frequencies (natural language ≈ 1).
  double zipf_skew = 1.05;

  /// Log-normal sigma of document token counts.
  double doc_length_sigma = 0.6;

  /// Generation seed; same profile + seed => bit-identical corpus.
  uint64_t seed = 0x48504131;

  /// Table 1 row 1: Mix — 23,432 docs, 62.8 MB, 184,743 distinct words.
  static CorpusProfile Mix();

  /// Table 1 row 2: NSF Abstracts — 101,483 docs, 310.9 MB, 267,914
  /// distinct words.
  static CorpusProfile NsfAbstracts();

  /// Profile scaled by `factor` in [0, 1]: documents and bytes scale
  /// linearly, vocabulary by factor^vocab_exponent.
  ///
  /// `vocab_exponent = 1.0` (default) produces a *proportional miniature*
  /// that preserves the documents:vocabulary ratio — the ratio the paper's
  /// scalability shapes depend on (the serial centroid-merge and term-id
  /// work grow with vocabulary while parallel work grows with documents).
  /// `vocab_exponent ≈ 0.7` instead mimics Heaps'-law subsampling of a
  /// real corpus (a smaller slice of NSF abstracts would genuinely have a
  /// relatively larger vocabulary).
  CorpusProfile Scaled(double factor, double vocab_exponent = 1.0) const;
};

/// Assigns a deterministic class label ("class0".."classN-1") to every
/// document and plants `marker_repeats` copies of a class-marker token
/// ("labelmarkerC") in the body, so supervised operators have real signal
/// to learn (the marker's TF/IDF weight separates the classes) while the
/// Zipf/log-normal shape of the corpus is left essentially intact.
/// Deterministic in (document name, seed): same corpus + seed =>
/// bit-identical labels at any worker count.
void AssignSyntheticLabels(Corpus* corpus, int num_classes, uint64_t seed,
                           int marker_repeats = 3);

/// Deterministic corpus generator for a profile.
class SynthCorpusGenerator {
 public:
  explicit SynthCorpusGenerator(CorpusProfile profile);

  /// Generates the whole corpus in memory. Guarantees:
  ///  * exactly `num_documents` documents;
  ///  * exactly `target_distinct_words` distinct tokens (rarely-sampled
  ///    vocabulary ranks are injected once, preserving the Zipf head);
  ///  * total bytes within a few percent of `target_bytes`.
  Corpus Generate() const;

  /// The word string for vocabulary rank `r` (rank 0 = most frequent).
  /// Deterministic in (seed, rank); all ranks yield distinct words.
  std::string WordForRank(uint64_t rank) const;

  const CorpusProfile& profile() const { return profile_; }

 private:
  CorpusProfile profile_;
};

}  // namespace hpa::text

#endif  // HPA_TEXT_SYNTH_CORPUS_H_
