#include "text/directory_corpus.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/checksum.h"
#include "io/file_io.h"

namespace hpa::text {

namespace fs = std::filesystem;

namespace {

bool MatchesExtension(const fs::path& path,
                      const std::vector<std::string>& extensions) {
  if (extensions.empty()) return true;
  std::string name = path.filename().string();
  for (const std::string& ext : extensions) {
    if (name.size() >= ext.size() &&
        name.compare(name.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<Corpus> ReadCorpusFromDirectory(
    const std::string& dir, const DirectoryCorpusOptions& options,
    QuarantineList* quarantine) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    return Status::NotFound("directory not found: " + dir);
  }
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument("not a directory: " + dir);
  }

  // Collect candidate paths first, then sort for determinism.
  std::vector<fs::path> paths;
  auto consider = [&](const fs::directory_entry& entry) {
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec)) return;
    if (!MatchesExtension(entry.path(), options.extensions)) return;
    if (options.max_file_bytes > 0) {
      uint64_t size = entry.file_size(file_ec);
      if (file_ec || size > options.max_file_bytes) return;
    }
    paths.push_back(entry.path());
  };

  if (options.recursive) {
    for (auto it = fs::recursive_directory_iterator(
             dir, fs::directory_options::skip_permission_denied, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) {
        return Status::IoError("walking '" + dir + "': " + ec.message());
      }
      consider(*it);
    }
  } else {
    for (auto it = fs::directory_iterator(
             dir, fs::directory_options::skip_permission_denied, ec);
         it != fs::directory_iterator(); it.increment(ec)) {
      if (ec) {
        return Status::IoError("listing '" + dir + "': " + ec.message());
      }
      consider(*it);
    }
  }

  // One file read with injected faults and bounded retry. The injector is
  // keyed by the document's relative name, so a given seed faults the same
  // documents regardless of where the corpus directory lives.
  auto read_file = [&](const std::string& abs_path, const std::string& key,
                       int* attempts) -> StatusOr<std::string> {
    return RetryCall(
        options.retry, StableHash64(key),
        [&](int attempt) -> StatusOr<std::string> {
          io::FaultDecision fault;
          if (options.fault_injector != nullptr) {
            fault = options.fault_injector->Decide("read", key, 0, attempt);
          }
          if (fault.kind == io::FaultKind::kTransient ||
              fault.kind == io::FaultKind::kPermanent) {
            return Status::IoError("injected " +
                                   std::string(io::FaultKindName(fault.kind)) +
                                   " fault reading '" + key + "'");
          }
          HPA_ASSIGN_OR_RETURN(std::string body,
                               io::ReadWholeFile(abs_path));
          // Loose text files carry no checksums, so injected corruption is
          // silent here — which is precisely the exposure the packed-corpus
          // v2 format closes. (Latency spikes have no clock to charge.)
          if (fault.kind == io::FaultKind::kCorruption) {
            io::FaultInjector::CorruptPayload(fault, &body);
          }
          return body;
        },
        [](double) {}, attempts);
  };

  Corpus corpus;
  corpus.name = dir;
  std::sort(paths.begin(), paths.end());
  corpus.docs.reserve(paths.size());
  for (const fs::path& path : paths) {
    Document doc;
    doc.name = fs::relative(path, dir, ec).generic_string();
    if (ec) doc.name = path.filename().string();
    int attempts = 1;
    StatusOr<std::string> body = read_file(path.string(), doc.name, &attempts);
    if (!body.ok()) {
      if (options.fault_policy == FaultPolicy::kRetryThenSkip) {
        if (quarantine != nullptr) {
          quarantine->retries += static_cast<uint64_t>(attempts - 1);
          quarantine->Add(doc.name, body.status(), attempts);
        }
        continue;
      }
      return body.status().WithContext("reading corpus from " + dir);
    }
    doc.body = std::move(*body);
    corpus.docs.push_back(std::move(doc));
  }
  if (quarantine != nullptr) quarantine->SortById();
  return corpus;
}

}  // namespace hpa::text
