#include "text/tokenizer.h"

namespace hpa::text {

size_t CountTokens(std::string_view body, const TokenizerOptions& options) {
  size_t count = 0;
  ForEachToken(body, options, [&](std::string_view) { ++count; });
  return count;
}

}  // namespace hpa::text
