#include "text/corpus_io.h"

#include "io/packed_corpus.h"

namespace hpa::text {

Status WriteCorpusPacked(const Corpus& corpus, io::SimDisk* disk,
                         const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(auto writer,
                       io::PackedCorpusWriter::Create(disk, rel_path));
  for (const Document& doc : corpus.docs) {
    HPA_RETURN_IF_ERROR(writer.Add(doc.name, doc.body, doc.label));
  }
  return writer.Finalize();
}

StatusOr<Corpus> ReadCorpusPacked(io::SimDisk* disk,
                                  const std::string& rel_path,
                                  const std::string& corpus_name) {
  HPA_ASSIGN_OR_RETURN(auto reader,
                       io::PackedCorpusReader::Open(disk, rel_path));
  Corpus corpus;
  corpus.name = corpus_name.empty() ? rel_path : corpus_name;
  corpus.docs.resize(reader.size());
  for (size_t i = 0; i < reader.size(); ++i) {
    corpus.docs[i].name = reader.name(i);
    corpus.docs[i].label = reader.label(i);
    HPA_ASSIGN_OR_RETURN(corpus.docs[i].body, reader.ReadBody(i));
  }
  return corpus;
}

}  // namespace hpa::text
