#include "text/stemmer.h"

#include <cstring>

namespace hpa::text {

namespace {

/// Direct transcription of Porter's reference implementation (1980 paper /
/// the author's public-domain C version), operating on b[0..k].
class PorterContext {
 public:
  explicit PorterContext(std::string& b)
      : b_(b), k_(static_cast<int>(b.size()) - 1), j_(0) {}

  /// Runs all steps; returns the stemmed length.
  int Stem() {
    if (k_ <= 1) return k_ + 1;  // words of length <= 2 are left alone
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return k_ + 1;
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// Measure: number of consonant-vowel sequences in b[0..j].
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<size_t>(j)] != b_[static_cast<size_t>(j - 1)]) {
      return false;
    }
    return IsConsonant(j);
  }

  /// consonant-vowel-consonant ending where the final consonant is not
  /// w, x or y (used to detect e.g. cav(e), lov(e), hop(e)).
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) ||
        !IsConsonant(i - 2)) {
      return false;
    }
    char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool Ends(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (std::memcmp(b_.data() + k_ - len + 1, s,
                    static_cast<size_t>(len)) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), s,
               static_cast<size_t>(len));
    k_ = j_ + len;
  }

  void ReplaceIfMeasure(const char* s) {
    if (Measure() > 0) SetTo(s);
  }

  // Step 1ab: plurals and -ed / -ing.
  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = b_[static_cast<size_t>(k_)];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Step 1c: terminal y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  // Step 2: double suffixes -> single ones (when m > 0).
  void Step2() {
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfMeasure("ate"); break; }
        if (Ends("tional")) { ReplaceIfMeasure("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfMeasure("ence"); break; }
        if (Ends("anci")) { ReplaceIfMeasure("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfMeasure("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfMeasure("ble"); break; }
        if (Ends("alli")) { ReplaceIfMeasure("al"); break; }
        if (Ends("entli")) { ReplaceIfMeasure("ent"); break; }
        if (Ends("eli")) { ReplaceIfMeasure("e"); break; }
        if (Ends("ousli")) { ReplaceIfMeasure("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfMeasure("ize"); break; }
        if (Ends("ation")) { ReplaceIfMeasure("ate"); break; }
        if (Ends("ator")) { ReplaceIfMeasure("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfMeasure("al"); break; }
        if (Ends("iveness")) { ReplaceIfMeasure("ive"); break; }
        if (Ends("fulness")) { ReplaceIfMeasure("ful"); break; }
        if (Ends("ousness")) { ReplaceIfMeasure("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfMeasure("al"); break; }
        if (Ends("iviti")) { ReplaceIfMeasure("ive"); break; }
        if (Ends("biliti")) { ReplaceIfMeasure("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfMeasure("log"); break; }
        break;
      default:
        break;
    }
  }

  // Step 3: -ic-, -full, -ness etc.
  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfMeasure("ic"); break; }
        if (Ends("ative")) { ReplaceIfMeasure(""); break; }
        if (Ends("alize")) { ReplaceIfMeasure("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfMeasure("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfMeasure("ic"); break; }
        if (Ends("ful")) { ReplaceIfMeasure(""); break; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfMeasure(""); break; }
        break;
      default:
        break;
    }
  }

  // Step 4: strip -ant, -ence etc. when m > 1.
  void Step4() {
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (Ends("ou")) break;  // takes care of -ous
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  // Step 5: remove final -e and reduce -ll when m > 1.
  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int a = Measure();
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure() > 1) {
      --k_;
    }
  }

  std::string& b_;
  int k_;
  int j_;
};

}  // namespace

std::string_view PorterStem(std::string& buffer) {
  PorterContext ctx(buffer);
  int len = ctx.Stem();
  return std::string_view(buffer).substr(0, static_cast<size_t>(len));
}

std::string PorterStemCopy(std::string_view word) {
  std::string buffer(word);
  return std::string(PorterStem(buffer));
}

}  // namespace hpa::text
