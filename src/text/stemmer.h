#ifndef HPA_TEXT_STEMMER_H_
#define HPA_TEXT_STEMMER_H_

#include <string>
#include <string_view>

/// \file
/// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping",
/// Program 14(3), 1980) — the classic preprocessing step between
/// tokenization and term counting in TF/IDF pipelines. Stemming folds
/// inflected forms ("connection", "connections", "connected") onto one
/// term, shrinking the dictionary the §3.4 experiments are all about.
///
/// This is the original 1980 algorithm (not Porter2/Snowball), operating
/// on lowercase ASCII words.

namespace hpa::text {

/// Stems `word` (lowercase ASCII letters only) in place in `buffer`.
/// Returns a view of the stemmed prefix of `buffer`. Words shorter than
/// 3 characters are returned unchanged, per the algorithm.
///
/// \code
///   std::string buf(token);
///   std::string_view stem = PorterStem(buf);
/// \endcode
std::string_view PorterStem(std::string& buffer);

/// Convenience copy form.
std::string PorterStemCopy(std::string_view word);

}  // namespace hpa::text

#endif  // HPA_TEXT_STEMMER_H_
