#ifndef HPA_TEXT_TOKENIZER_H_
#define HPA_TEXT_TOKENIZER_H_

#include <cstddef>
#include <string_view>

/// \file
/// Zero-allocation ASCII tokenizer used by word count / TF-IDF. Tokens are
/// maximal runs of ASCII letters, lowercased into a small stack buffer, so
/// the tokenize-and-count hot loop performs no heap allocation per token
/// (allocation only happens when a dictionary inserts a new word).

namespace hpa::text {

/// Tokenization parameters.
struct TokenizerOptions {
  /// Tokens shorter than this are skipped (noise like "a", "I").
  size_t min_token_length = 1;

  /// Tokens longer than this are truncated (defensive bound; natural
  /// language rarely exceeds ~30 letters).
  size_t max_token_length = 64;

  /// Lowercase tokens (the paper's TF/IDF treats words case-insensitively).
  bool lowercase = true;
};

/// Calls `fn(std::string_view token)` for every token in `body`. The
/// string_view points into an internal stack buffer and is only valid for
/// the duration of the call.
template <typename Fn>
void ForEachToken(std::string_view body, const TokenizerOptions& options,
                  Fn fn) {
  char buf[64];
  const size_t max_len =
      options.max_token_length < sizeof(buf) ? options.max_token_length
                                             : sizeof(buf);
  size_t len = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    unsigned char c = i < body.size() ? static_cast<unsigned char>(body[i])
                                      : static_cast<unsigned char>(' ');
    bool is_alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    if (is_alpha) {
      if (len < max_len) {
        char lower = static_cast<char>(c >= 'A' && c <= 'Z'
                                           ? (options.lowercase ? c + 32 : c)
                                           : c);
        buf[len++] = lower;
      }
      // Letters beyond max_len are dropped (truncation).
    } else if (len > 0) {
      if (len >= options.min_token_length) {
        fn(std::string_view(buf, len));
      }
      len = 0;
    }
  }
}

/// Convenience overload with default options.
template <typename Fn>
void ForEachToken(std::string_view body, Fn fn) {
  ForEachToken(body, TokenizerOptions{}, fn);
}

/// Counts tokens in `body` under `options`.
size_t CountTokens(std::string_view body, const TokenizerOptions& options);

}  // namespace hpa::text

#endif  // HPA_TEXT_TOKENIZER_H_
