#ifndef HPA_TEXT_CORPUS_IO_H_
#define HPA_TEXT_CORPUS_IO_H_

#include <string>

#include "common/status.h"
#include "io/sim_disk.h"
#include "text/document.h"

/// \file
/// Glue between in-memory corpora and packed corpus files on a SimDisk.

namespace hpa::text {

/// Writes `corpus` as a packed corpus file at `rel_path` on `disk`.
Status WriteCorpusPacked(const Corpus& corpus, io::SimDisk* disk,
                         const std::string& rel_path);

/// Reads a whole packed corpus into memory (serially; the parallel path is
/// the word-count operator reading documents inside its parallel loop).
StatusOr<Corpus> ReadCorpusPacked(io::SimDisk* disk,
                                  const std::string& rel_path,
                                  const std::string& corpus_name = "");

}  // namespace hpa::text

#endif  // HPA_TEXT_CORPUS_IO_H_
