#include "text/vocab_stats.h"

#include "containers/open_hash_map.h"

namespace hpa::text {

CorpusStats ComputeStats(const Corpus& corpus,
                         const TokenizerOptions& options) {
  CorpusStats stats;
  stats.name = corpus.name;
  stats.documents = corpus.size();
  stats.bytes = corpus.TotalBytes();
  containers::OpenHashMap<std::string, uint32_t> vocab(1 << 16);
  for (const Document& doc : corpus.docs) {
    ForEachToken(doc.body, options, [&](std::string_view token) {
      ++stats.total_tokens;
      vocab.FindOrInsert(token) += 1;
    });
  }
  stats.distinct_words = vocab.size();
  return stats;
}

}  // namespace hpa::text
