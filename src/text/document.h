#ifndef HPA_TEXT_DOCUMENT_H_
#define HPA_TEXT_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// In-memory corpus types shared by the text operators.

namespace hpa::text {

/// One text document. `label` is the optional class label for supervised
/// operators; empty = unlabeled.
struct Document {
  std::string name;
  std::string body;
  std::string label;
};

/// A set of documents, optionally labelled with a dataset name.
struct Corpus {
  std::string name;
  std::vector<Document> docs;

  size_t size() const { return docs.size(); }

  /// Sum of body sizes in bytes.
  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const Document& d : docs) total += d.body.size();
    return total;
  }
};

}  // namespace hpa::text

#endif  // HPA_TEXT_DOCUMENT_H_
