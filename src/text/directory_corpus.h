#ifndef HPA_TEXT_DIRECTORY_CORPUS_H_
#define HPA_TEXT_DIRECTORY_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "io/fault_injection.h"
#include "text/document.h"

/// \file
/// Loading corpora from real directories of text files — the way the
/// paper's corpora were actually stored ("reading independent files
/// concurrently", §3.2) and the entry point for users with their own data.

namespace hpa::text {

/// Options for directory loading.
struct DirectoryCorpusOptions {
  /// Only files whose name ends with one of these are loaded; empty list
  /// means every regular file.
  std::vector<std::string> extensions = {".txt"};

  /// Recurse into subdirectories.
  bool recursive = true;

  /// Skip files larger than this many bytes (0 = no limit).
  uint64_t max_file_bytes = 0;

  /// Bounded retry for per-file read failures. Defaults to no retries (the
  /// pre-fault-tolerance behavior). Backoff here is accounted, not slept —
  /// loose-file corpora have no virtual clock to charge.
  RetryPolicy retry = RetryPolicy::NoRetry();

  /// What to do with a file whose reads stay failed after the retry
  /// budget: kFailFast aborts the load; kRetryThenSkip records the file in
  /// the caller's quarantine list and loads the rest.
  FaultPolicy fault_policy = FaultPolicy::kFailFast;

  /// Optional fault injector consulted per file read (keyed by the
  /// document's relative path, so schedules are stable across hosts).
  /// Not owned; null = no injected faults.
  io::FaultInjector* fault_injector = nullptr;
};

/// Reads every matching file under `dir` into a Corpus. Document names are
/// the paths relative to `dir`; documents are ordered by name, so the
/// corpus is deterministic regardless of directory-iteration order.
/// Returns NotFound if `dir` does not exist and InvalidArgument if it is
/// not a directory.
///
/// Under FaultPolicy::kRetryThenSkip, unreadable files are omitted from
/// the corpus and recorded in `quarantine` (if non-null) instead of
/// failing the load.
StatusOr<Corpus> ReadCorpusFromDirectory(
    const std::string& dir, const DirectoryCorpusOptions& options = {},
    QuarantineList* quarantine = nullptr);

}  // namespace hpa::text

#endif  // HPA_TEXT_DIRECTORY_CORPUS_H_
