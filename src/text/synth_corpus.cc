#include "text/synth_corpus.h"

#include <algorithm>
#include <cmath>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace hpa::text {

CorpusProfile CorpusProfile::Mix() {
  CorpusProfile p;
  p.name = "Mix";
  p.num_documents = 23432;
  p.target_bytes = 65866956;  // 62.8 MiB
  p.target_distinct_words = 184743;
  p.seed = 0x4D495831;  // "MIX1"
  return p;
}

CorpusProfile CorpusProfile::NsfAbstracts() {
  CorpusProfile p;
  p.name = "NSF Abstracts";
  p.num_documents = 101483;
  p.target_bytes = 326004736;  // 310.9 MiB
  p.target_distinct_words = 267914;
  p.seed = 0x4E534631;  // "NSF1"
  return p;
}

CorpusProfile CorpusProfile::Scaled(double factor,
                                    double vocab_exponent) const {
  if (factor >= 1.0) return *this;
  CorpusProfile p = *this;
  auto scale = [](uint64_t v, double f, uint64_t floor_value) {
    uint64_t scaled = static_cast<uint64_t>(static_cast<double>(v) * f);
    return scaled < floor_value ? floor_value : scaled;
  };
  p.num_documents = scale(num_documents, factor, 10);
  p.target_bytes = scale(target_bytes, factor, 10000);
  p.target_distinct_words = scale(target_distinct_words,
                                  std::pow(factor, vocab_exponent), 100);
  p.name = name + StrFormat(" (x%.3g)", factor);
  return p;
}

SynthCorpusGenerator::SynthCorpusGenerator(CorpusProfile profile)
    : profile_(std::move(profile)) {}

std::string SynthCorpusGenerator::WordForRank(uint64_t rank) const {
  // Prefix: 2-4 letters for the Zipf head (common words are short), 3-8
  // letters for the tail, drawn from a rank-seeded generator.
  SplitMix64 sm(profile_.seed ^ (rank * 0x9E3779B97F4A7C15ULL + 1));
  uint64_t bits = sm.Next();
  size_t prefix_len =
      rank < 128 ? 2 + bits % 3 : 3 + bits % 6;
  std::string word;
  word.reserve(prefix_len + 5);
  for (size_t i = 0; i < prefix_len; ++i) {
    bits = sm.Next();
    word += static_cast<char>('a' + bits % 26);
  }
  // Suffix: rank in base-26 guarantees uniqueness across ranks.
  uint64_t r = rank;
  do {
    word += static_cast<char>('a' + r % 26);
    r /= 26;
  } while (r > 0);
  return word;
}

Corpus SynthCorpusGenerator::Generate() const {
  const uint64_t vocab = std::max<uint64_t>(1, profile_.target_distinct_words);
  const uint64_t docs = std::max<uint64_t>(1, profile_.num_documents);

  // Materialize the vocabulary once; token emission then only copies.
  std::vector<std::string> words;
  words.reserve(vocab);
  for (uint64_t r = 0; r < vocab; ++r) words.push_back(WordForRank(r));

  ZipfSampler zipf(vocab, profile_.zipf_skew);
  Rng rng(profile_.seed);

  // Calibrate expected bytes per token (word + separator) by sampling the
  // Zipf distribution: frequent short words dominate token mass.
  double sampled_len = 0.0;
  const int kCalibration = 20000;
  for (int i = 0; i < kCalibration; ++i) {
    sampled_len += static_cast<double>(words[zipf.Sample(rng)].size());
  }
  double bytes_per_token = sampled_len / kCalibration + 1.0;

  double mean_tokens_per_doc = static_cast<double>(profile_.target_bytes) /
                               static_cast<double>(docs) / bytes_per_token;
  if (mean_tokens_per_doc < 1.0) mean_tokens_per_doc = 1.0;
  // Log-normal with mean m: mu = ln(m) - sigma^2/2.
  double sigma = profile_.doc_length_sigma;
  double mu = std::log(mean_tokens_per_doc) - sigma * sigma / 2.0;

  Corpus corpus;
  corpus.name = profile_.name;
  corpus.docs.resize(docs);

  std::vector<bool> seen(vocab, false);
  uint64_t distinct_seen = 0;

  for (uint64_t d = 0; d < docs; ++d) {
    Document& doc = corpus.docs[d];
    doc.name = StrFormat("doc_%06llu", static_cast<unsigned long long>(d));
    uint64_t tokens =
        static_cast<uint64_t>(std::max(1.0, rng.NextLogNormal(mu, sigma)));
    doc.body.reserve(static_cast<size_t>(tokens * bytes_per_token) + 16);
    uint64_t sentence_left = 8 + rng.NextBounded(12);
    for (uint64_t t = 0; t < tokens; ++t) {
      uint64_t rank = zipf.Sample(rng);
      if (!seen[rank]) {
        seen[rank] = true;
        ++distinct_seen;
      }
      doc.body += words[rank];
      if (--sentence_left == 0) {
        doc.body += ".\n";
        sentence_left = 8 + rng.NextBounded(12);
      } else {
        doc.body += ' ';
      }
    }
  }

  // Vocabulary sweep: inject each never-sampled rank once, spread across
  // documents, so the corpus has exactly `vocab` distinct words. The tail
  // mass this adds is negligible relative to the Zipf head.
  uint64_t inject_doc = 0;
  for (uint64_t r = 0; r < vocab; ++r) {
    if (seen[r]) continue;
    Document& doc = corpus.docs[inject_doc % docs];
    doc.body += words[r];
    doc.body += ' ';
    ++inject_doc;
  }
  if (inject_doc > 0) {
    HPA_LOG(kDebug, "corpus '%s': injected %llu tail words for coverage",
            profile_.name.c_str(),
            static_cast<unsigned long long>(inject_doc));
  }

  return corpus;
}

void AssignSyntheticLabels(Corpus* corpus, int num_classes, uint64_t seed,
                           int marker_repeats) {
  if (num_classes < 1) num_classes = 1;
  for (Document& doc : corpus->docs) {
    uint64_t c = StableHash64(doc.name, seed) %
                 static_cast<uint64_t>(num_classes);
    doc.label = "class" + std::to_string(c);
    std::string marker = "labelmarker" + std::to_string(c);
    for (int r = 0; r < marker_repeats; ++r) {
      doc.body += ' ';
      doc.body += marker;
    }
  }
}

}  // namespace hpa::text
