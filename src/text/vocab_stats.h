#ifndef HPA_TEXT_VOCAB_STATS_H_
#define HPA_TEXT_VOCAB_STATS_H_

#include <cstdint>
#include <string>

#include "text/document.h"
#include "text/tokenizer.h"

/// \file
/// Corpus statistics — the numbers reported in the paper's Table 1.

namespace hpa::text {

/// One Table-1 row.
struct CorpusStats {
  std::string name;
  uint64_t documents = 0;
  uint64_t bytes = 0;
  uint64_t distinct_words = 0;
  uint64_t total_tokens = 0;
};

/// Computes document count, byte size, distinct-word count and token count
/// for `corpus` under `options`.
CorpusStats ComputeStats(const Corpus& corpus,
                         const TokenizerOptions& options = {});

}  // namespace hpa::text

#endif  // HPA_TEXT_VOCAB_STATS_H_
