#include "io/packed_corpus.h"

#include <cstring>

#include "common/checksum.h"

namespace hpa::io {

namespace {

// v2 adds a u32 CRC-32 per index entry; v3 adds a label column for
// supervised operators. v1/v2 files stay readable.
constexpr char kMagicV1[8] = {'H', 'P', 'A', 'C', 'O', 'R', 'P', '1'};
constexpr char kMagicV2[8] = {'H', 'P', 'A', 'C', 'O', 'R', 'P', '2'};
constexpr char kMagicV3[8] = {'H', 'P', 'A', 'C', 'O', 'R', 'P', '3'};
constexpr size_t kFooterBytes = 8 + 8 + 8;  // index_offset, doc_count, magic

void AppendU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

bool ReadU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool ReadU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

StatusOr<PackedCorpusWriter> PackedCorpusWriter::Create(
    SimDisk* disk, const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(auto writer, disk->OpenWriter(rel_path));
  return PackedCorpusWriter(std::move(writer));
}

Status PackedCorpusWriter::Add(std::string_view name, std::string_view body,
                               std::string_view label) {
  if (finalized_) {
    return Status::FailedPrecondition("corpus already finalized");
  }
  HPA_RETURN_IF_ERROR(writer_->Append(body));
  index_.push_back(IndexEntry{std::string(name), std::string(label),
                              position_, body.size(), Crc32(body)});
  position_ += body.size();
  if (!label.empty()) any_label_ = true;
  return Status::OK();
}

Status PackedCorpusWriter::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("corpus already finalized");
  }
  finalized_ = true;
  uint64_t index_offset = position_;
  std::string blob;
  for (const IndexEntry& e : index_) {
    AppendU32(blob, static_cast<uint32_t>(e.name.size()));
    blob.append(e.name);
    if (any_label_) {
      AppendU32(blob, static_cast<uint32_t>(e.label.size()));
      blob.append(e.label);
    }
    AppendU64(blob, e.offset);
    AppendU64(blob, e.length);
    AppendU32(blob, e.crc);
  }
  AppendU64(blob, index_offset);
  AppendU64(blob, index_.size());
  blob.append(any_label_ ? kMagicV3 : kMagicV2, sizeof(kMagicV2));
  HPA_RETURN_IF_ERROR(writer_->Append(blob));
  return writer_->Close();
}

StatusOr<PackedCorpusReader> PackedCorpusReader::Open(
    SimDisk* disk, const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(uint64_t file_size, disk->FileSize(rel_path));
  if (file_size < kFooterBytes) {
    return Status::Corruption("packed corpus too small: " + rel_path);
  }
  HPA_ASSIGN_OR_RETURN(
      std::string footer,
      disk->ReadRange(rel_path, file_size - kFooterBytes, kFooterBytes));
  bool has_checksums;
  bool has_labels = false;
  if (std::memcmp(footer.data() + 16, kMagicV3, sizeof(kMagicV3)) == 0) {
    has_checksums = true;
    has_labels = true;
  } else if (std::memcmp(footer.data() + 16, kMagicV2, sizeof(kMagicV2)) ==
             0) {
    has_checksums = true;
  } else if (std::memcmp(footer.data() + 16, kMagicV1, sizeof(kMagicV1)) ==
             0) {
    has_checksums = false;
  } else {
    return Status::Corruption("bad magic in packed corpus: " + rel_path);
  }
  size_t pos = 0;
  uint64_t index_offset = 0, doc_count = 0;
  ReadU64(footer, &pos, &index_offset);
  ReadU64(footer, &pos, &doc_count);
  if (index_offset > file_size - kFooterBytes) {
    return Status::Corruption("index offset out of bounds: " + rel_path);
  }

  HPA_ASSIGN_OR_RETURN(
      std::string index_blob,
      disk->ReadRange(rel_path, index_offset,
                      file_size - kFooterBytes - index_offset));
  std::vector<Entry> entries;
  entries.reserve(doc_count);
  pos = 0;
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(index_blob, &pos, &name_len) ||
        pos + name_len > index_blob.size()) {
      return Status::Corruption("truncated index entry in " + rel_path);
    }
    Entry e;
    e.name.assign(index_blob.data() + pos, name_len);
    pos += name_len;
    if (has_labels) {
      uint32_t label_len = 0;
      if (!ReadU32(index_blob, &pos, &label_len) ||
          pos + label_len > index_blob.size()) {
        return Status::Corruption("truncated index entry in " + rel_path);
      }
      e.label.assign(index_blob.data() + pos, label_len);
      pos += label_len;
    }
    if (!ReadU64(index_blob, &pos, &e.offset) ||
        !ReadU64(index_blob, &pos, &e.length)) {
      return Status::Corruption("truncated index entry in " + rel_path);
    }
    e.crc = 0;
    if (has_checksums && !ReadU32(index_blob, &pos, &e.crc)) {
      return Status::Corruption("truncated index entry in " + rel_path);
    }
    if (e.offset + e.length > index_offset) {
      return Status::Corruption("document range out of bounds in " +
                                rel_path);
    }
    entries.push_back(std::move(e));
  }
  return PackedCorpusReader(disk, rel_path, std::move(entries),
                            has_checksums, has_labels);
}

StatusOr<std::string> PackedCorpusReader::ReadBody(size_t i) const {
  if (i >= entries_.size()) {
    return Status::OutOfRange("document index " + std::to_string(i) +
                              " out of range (corpus has " +
                              std::to_string(entries_.size()) + ")");
  }
  const Entry& e = entries_[i];
  const RetryPolicy& retry = disk_->retry_policy();
  const int max_attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  const uint64_t token = StableHash64(rel_path_) + e.offset;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      // A checksum-triggered re-read is priced like any other retry.
      disk_->NoteRetry(retry.BackoffSeconds(attempt - 1, token));
    }
    // attempt_base shifts the fault injector's attempt numbering so the
    // re-read is a genuinely new attempt, not a replay of the first.
    HPA_ASSIGN_OR_RETURN(std::string body,
                         disk_->ReadRange(rel_path_, e.offset, e.length,
                                          /*attempt_base=*/attempt));
    if (!has_checksums_ || Crc32(body) == e.crc) return body;
    if (attempt + 1 >= max_attempts) {
      return Status::Corruption("checksum mismatch for document '" + e.name +
                                "' in " + rel_path_ + " after " +
                                std::to_string(attempt + 1) + " attempt(s)");
    }
  }
}

uint64_t PackedCorpusReader::total_body_bytes() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) total += e.length;
  return total;
}

}  // namespace hpa::io
