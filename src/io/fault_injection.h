#ifndef HPA_IO_FAULT_INJECTION_H_
#define HPA_IO_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file
/// Deterministic, seed-driven I/O fault injection.
///
/// A `FaultInjector` wraps no state of its own around the file operations;
/// instead, `SimDisk` (and the directory-corpus loader) consult it before
/// each read request. Whether a given request faults is a *pure function*
/// of (profile seed, operation, path, offset, attempt) — never of wall
/// time, call order, or thread interleaving — so a fault schedule is
/// bit-reproducible across worker counts and executor kinds. That is what
/// makes "same seed => same faults" testable and lets benches ablate
/// recovery cost without noise from the schedule itself.
///
/// Supported fault classes (independent per-request rates):
///  * transient errors  — the request fails this attempt; a retry (which
///    hashes with a different attempt number) almost surely succeeds;
///  * permanent errors  — every attempt for the request fails (decided
///    without the attempt number), modelling a lost/unreadable object;
///  * payload corruption — the read succeeds but one byte is flipped;
///    detected downstream by the CRC-32 checksums in the packed-corpus
///    index and the sharded-ARFF manifest;
///  * latency spikes    — the request succeeds but costs extra device
///    time, charged to the SimDisk's virtual clock.

namespace hpa::io {

/// Per-request fault rates, all in [0, 1]. Default-constructed = no faults.
struct FaultProfile {
  /// Probability a given (request, attempt) fails with a transient error.
  double transient_rate = 0.0;

  /// Probability a given request is permanently unreadable (all attempts).
  double permanent_rate = 0.0;

  /// Probability a given (request, attempt) returns corrupted payload.
  double corruption_rate = 0.0;

  /// Probability a given (request, attempt) incurs a latency spike.
  double latency_spike_rate = 0.0;

  /// Extra device seconds charged per latency spike.
  double latency_spike_sec = 0.050;

  /// Schedule seed; two injectors with equal profiles make identical
  /// decisions.
  uint64_t seed = 1;

  bool Enabled() const {
    return transient_rate > 0.0 || permanent_rate > 0.0 ||
           corruption_rate > 0.0 || latency_spike_rate > 0.0;
  }

  /// Rejects profiles whose rates fall outside [0, 1] or whose spike
  /// latency is negative (kInvalidArgument naming the bad field). A rate
  /// outside the unit interval would not fault "more" — it would silently
  /// compare garbage against the unit-mapped hash — so constructing a
  /// FaultInjector from an invalid profile is a hard CHECK failure.
  Status Validate() const;
};

/// What a single decision resolved to.
enum class FaultKind {
  kNone,
  kTransient,
  kPermanent,
  kCorruption,
  kLatencySpike,
};

/// Stable lowercase name for `kind` (e.g. "transient").
std::string_view FaultKindName(FaultKind kind);

/// Outcome of consulting the injector for one request attempt.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;

  /// For kLatencySpike: device seconds to charge on top of the request.
  double extra_latency_sec = 0.0;

  /// For kCorruption: pseudo-random value selecting which payload byte to
  /// flip (reduced modulo the payload size at application).
  uint64_t corrupt_at = 0;
};

/// Thread-safe fault oracle. Decisions are pure functions of the request
/// identity; only the lifetime counters mutate (atomically), so the same
/// injector can be consulted from inside parallel-region bodies.
class FaultInjector {
 public:
  /// CHECK-fails on an invalid profile (see FaultProfile::Validate).
  explicit FaultInjector(const FaultProfile& profile);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decides the fate of attempt `attempt` (0-based) of request
  /// (`op`, `key`, `offset`). `op` names the operation class ("read",
  /// "range"); `key` is the path. Precedence when rates overlap:
  /// permanent > transient > corruption > latency spike.
  FaultDecision Decide(std::string_view op, std::string_view key,
                       uint64_t offset, int attempt);

  /// Flips one byte of `payload` as directed by a kCorruption decision.
  /// No-op on empty payloads.
  static void CorruptPayload(const FaultDecision& decision,
                             std::string* payload);

  const FaultProfile& profile() const { return profile_; }

  /// Lifetime counters of injected events (safe to read concurrently).
  uint64_t injected_transient() const {
    return transient_.load(std::memory_order_relaxed);
  }
  uint64_t injected_permanent() const {
    return permanent_.load(std::memory_order_relaxed);
  }
  uint64_t injected_corruption() const {
    return corruption_.load(std::memory_order_relaxed);
  }
  uint64_t injected_latency_spikes() const {
    return spikes_.load(std::memory_order_relaxed);
  }
  uint64_t injected_total() const {
    return injected_transient() + injected_permanent() +
           injected_corruption() + injected_latency_spikes();
  }

  void ResetCounters();

 private:
  FaultProfile profile_;
  std::atomic<uint64_t> transient_{0};
  std::atomic<uint64_t> permanent_{0};
  std::atomic<uint64_t> corruption_{0};
  std::atomic<uint64_t> spikes_{0};
};

}  // namespace hpa::io

#endif  // HPA_IO_FAULT_INJECTION_H_
