#ifndef HPA_IO_PACKED_CORPUS_H_
#define HPA_IO_PACKED_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/sim_disk.h"

/// \file
/// Single-file corpus container: many small documents packed into one file
/// with a trailing index, so a 100k-document corpus does not need 100k
/// inodes while still supporting *independent per-document reads* — the
/// unit of parallel input in §3.2 ("reading independent files
/// concurrently").
///
/// Layout:
///   [body 0][body 1]...[body n-1]
///   index: n records of (name_len u32, name bytes, offset u64, length u64)
///   footer: index_offset u64, doc_count u64, magic "HPACORP1"

namespace hpa::io {

/// Streams documents into a packed corpus file on a SimDisk.
class PackedCorpusWriter {
 public:
  /// Creates/truncates `rel_path` on `disk`.
  static StatusOr<PackedCorpusWriter> Create(SimDisk* disk,
                                             const std::string& rel_path);

  PackedCorpusWriter(PackedCorpusWriter&&) = default;
  PackedCorpusWriter& operator=(PackedCorpusWriter&&) = default;

  /// Appends one document.
  Status Add(std::string_view name, std::string_view body);

  /// Writes the index + footer and closes the file. Must be called exactly
  /// once; Add() is invalid afterwards.
  Status Finalize();

  uint64_t documents_added() const { return index_.size(); }

 private:
  struct IndexEntry {
    std::string name;
    uint64_t offset;
    uint64_t length;
  };

  explicit PackedCorpusWriter(std::unique_ptr<SimWriter> writer)
      : writer_(std::move(writer)) {}

  std::unique_ptr<SimWriter> writer_;
  std::vector<IndexEntry> index_;
  uint64_t position_ = 0;
  bool finalized_ = false;
};

/// Random-access reader over a packed corpus file.
///
/// Opening loads only the index; document bodies are fetched individually
/// with ranged reads (each charged as one device request), so a parallel
/// loop over documents issues genuinely concurrent requests.
class PackedCorpusReader {
 public:
  /// Opens `rel_path` on `disk`, validating magic and index bounds.
  static StatusOr<PackedCorpusReader> Open(SimDisk* disk,
                                           const std::string& rel_path);

  PackedCorpusReader(PackedCorpusReader&&) = default;
  PackedCorpusReader& operator=(PackedCorpusReader&&) = default;

  /// Number of documents in the corpus.
  size_t size() const { return entries_.size(); }

  /// Name of document `i`.
  const std::string& name(size_t i) const { return entries_[i].name; }

  /// Body length of document `i`, without reading it.
  uint64_t body_length(size_t i) const { return entries_[i].length; }

  /// Reads the body of document `i` (one simulated device request).
  /// Safe to call concurrently from parallel-region bodies.
  StatusOr<std::string> ReadBody(size_t i) const;

  /// Sum of all body lengths.
  uint64_t total_body_bytes() const;

 private:
  struct Entry {
    std::string name;
    uint64_t offset;
    uint64_t length;
  };

  PackedCorpusReader(SimDisk* disk, std::string rel_path,
                     std::vector<Entry> entries)
      : disk_(disk), rel_path_(std::move(rel_path)),
        entries_(std::move(entries)) {}

  SimDisk* disk_;
  std::string rel_path_;
  std::vector<Entry> entries_;
};

}  // namespace hpa::io

#endif  // HPA_IO_PACKED_CORPUS_H_
