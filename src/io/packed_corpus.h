#ifndef HPA_IO_PACKED_CORPUS_H_
#define HPA_IO_PACKED_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/sim_disk.h"

/// \file
/// Single-file corpus container: many small documents packed into one file
/// with a trailing index, so a 100k-document corpus does not need 100k
/// inodes while still supporting *independent per-document reads* — the
/// unit of parallel input in §3.2 ("reading independent files
/// concurrently").
///
/// Layout (v2, magic "HPACORP2"):
///   [body 0][body 1]...[body n-1]
///   index: n records of (name_len u32, name bytes, offset u64, length u64,
///                        crc32 u32)
///   footer: index_offset u64, doc_count u64, magic
///
/// The per-document CRC-32 lets ReadBody detect payload corruption (bit
/// flips, torn transfers) instead of feeding bad bytes to the operators; a
/// mismatch triggers a bounded re-read per the disk's retry policy and
/// surfaces as kCorruption only if it persists. v1 files ("HPACORP1",
/// no crc field) remain readable with verification disabled.
///
/// v3 ("HPACORP3") is the labeled-corpus variant: each index record gains
/// a (label_len u32, label bytes) pair after the name, carrying the class
/// label for supervised operators (Naive Bayes / k-NN training). The
/// writer emits v3 only when at least one document has a non-empty label,
/// so unlabeled corpora stay byte-identical to v2 and every pre-existing
/// file remains readable. Labels live in the index, not the payload:
/// training operators read them for free at Open() time without touching
/// document bodies.

namespace hpa::io {

/// Streams documents into a packed corpus file on a SimDisk.
class PackedCorpusWriter {
 public:
  /// Creates/truncates `rel_path` on `disk`.
  static StatusOr<PackedCorpusWriter> Create(SimDisk* disk,
                                             const std::string& rel_path);

  PackedCorpusWriter(PackedCorpusWriter&&) = default;
  PackedCorpusWriter& operator=(PackedCorpusWriter&&) = default;

  /// Appends one document. A non-empty `label` marks the corpus as
  /// labeled: Finalize() then writes the v3 format carrying one label per
  /// document (empty for documents added without one).
  Status Add(std::string_view name, std::string_view body,
             std::string_view label = {});

  /// Writes the index + footer and closes the file. Must be called exactly
  /// once; Add() is invalid afterwards.
  Status Finalize();

  uint64_t documents_added() const { return index_.size(); }

 private:
  struct IndexEntry {
    std::string name;
    std::string label;
    uint64_t offset;
    uint64_t length;
    uint32_t crc;
  };

  explicit PackedCorpusWriter(std::unique_ptr<SimWriter> writer)
      : writer_(std::move(writer)) {}

  std::unique_ptr<SimWriter> writer_;
  std::vector<IndexEntry> index_;
  uint64_t position_ = 0;
  bool finalized_ = false;
  bool any_label_ = false;
};

/// Random-access reader over a packed corpus file.
///
/// Opening loads only the index; document bodies are fetched individually
/// with ranged reads (each charged as one device request), so a parallel
/// loop over documents issues genuinely concurrent requests.
class PackedCorpusReader {
 public:
  /// Opens `rel_path` on `disk`, validating magic and index bounds.
  static StatusOr<PackedCorpusReader> Open(SimDisk* disk,
                                           const std::string& rel_path);

  PackedCorpusReader(PackedCorpusReader&&) = default;
  PackedCorpusReader& operator=(PackedCorpusReader&&) = default;

  /// Number of documents in the corpus.
  size_t size() const { return entries_.size(); }

  /// Name of document `i`.
  const std::string& name(size_t i) const { return entries_[i].name; }

  /// Class label of document `i` (empty for v1/v2 files and for unlabeled
  /// documents in a v3 file).
  const std::string& label(size_t i) const { return entries_[i].label; }

  /// Body length of document `i`, without reading it.
  uint64_t body_length(size_t i) const { return entries_[i].length; }

  /// Byte offset of document `i`'s body within the packed file. Bodies are
  /// laid out contiguously in document order, so a window of consecutive
  /// documents spans one contiguous byte range — the unit of the windowed
  /// reader's ranged prefetch.
  uint64_t body_offset(size_t i) const { return entries_[i].offset; }

  /// Stored CRC-32 of document `i`'s body (meaningless for v1 files; check
  /// has_checksums()). Lets window-level readers validate per-document
  /// slices of a bulk ranged read without re-fetching.
  uint32_t body_crc(size_t i) const { return entries_[i].crc; }

  /// Path of the packed file relative to the disk root.
  const std::string& rel_path() const { return rel_path_; }

  /// Reads the body of document `i` (one simulated device request).
  /// For v2 files the payload CRC is verified; a mismatch triggers a
  /// bounded re-read per the disk's retry policy (backoff charged to the
  /// clock) and returns kCorruption only if every attempt mismatches.
  /// Safe to call concurrently from parallel-region bodies.
  StatusOr<std::string> ReadBody(size_t i) const;

  /// True for v2+ files carrying per-document checksums.
  bool has_checksums() const { return has_checksums_; }

  /// True for v3 files carrying a label column.
  bool has_labels() const { return has_labels_; }

  /// The disk this reader reads from (callers consult its retry policy
  /// when attributing quarantine attempt counts).
  SimDisk* disk() const { return disk_; }

  /// Sum of all body lengths.
  uint64_t total_body_bytes() const;

 private:
  struct Entry {
    std::string name;
    std::string label;
    uint64_t offset;
    uint64_t length;
    uint32_t crc;
  };

  PackedCorpusReader(SimDisk* disk, std::string rel_path,
                     std::vector<Entry> entries, bool has_checksums,
                     bool has_labels)
      : disk_(disk), rel_path_(std::move(rel_path)),
        entries_(std::move(entries)), has_checksums_(has_checksums),
        has_labels_(has_labels) {}

  SimDisk* disk_;
  std::string rel_path_;
  std::vector<Entry> entries_;
  bool has_checksums_;
  bool has_labels_;
};

}  // namespace hpa::io

#endif  // HPA_IO_PACKED_CORPUS_H_
