#include "io/corpus_window.h"

#include <algorithm>

#include "common/checksum.h"

namespace hpa::io {

std::vector<CorpusWindow> PlanWindows(const PackedCorpusReader& corpus,
                                      uint64_t window_bytes) {
  std::vector<CorpusWindow> windows;
  const size_t n = corpus.size();
  if (n == 0) return windows;
  if (window_bytes == 0) window_bytes = ~0ULL;
  CorpusWindow current;
  current.begin_doc = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t len = corpus.body_length(i);
    bool fits = current.bytes + len <= window_bytes;
    // Always admit the first document of a window, even oversized ones.
    if (i > current.begin_doc && !fits) {
      current.end_doc = i;
      windows.push_back(current);
      current = CorpusWindow{};
      current.begin_doc = i;
    }
    current.bytes += len;
  }
  current.end_doc = n;
  windows.push_back(current);
  return windows;
}

WindowPrefetcher::WindowPrefetcher(const PackedCorpusReader* corpus,
                                   uint64_t window_bytes, bool prefetch)
    : corpus_(corpus), window_bytes_(window_bytes), prefetch_(prefetch),
      windows_(PlanWindows(*corpus, window_bytes)) {}

void WindowPrefetcher::DropSlot(Slot* slot) {
  if (!slot->valid) return;
  uint64_t bytes = windows_[slot->window_index].bytes;
  resident_bytes_ = resident_bytes_ >= bytes ? resident_bytes_ - bytes : 0;
  slot->data.bodies.clear();
  slot->data.statuses.clear();
  slot->valid = false;
}

void WindowPrefetcher::Reset() {
  DropSlot(&slots_[0]);
  DropSlot(&slots_[1]);
  next_acquire_ = 0;
}

void WindowPrefetcher::Fetch(size_t w, WindowData* out) {
  const CorpusWindow& win = windows_[w];
  out->begin_doc = win.begin_doc;
  out->end_doc = win.end_doc;
  size_t count = win.end_doc - win.begin_doc;
  out->bodies.assign(count, std::string());
  out->statuses.assign(count, Status::OK());

  // One contiguous ranged read covers the whole window (bodies are laid out
  // in document order). The transfer's cost is accounted by the lane model
  // in Issue(), so the physical read runs with the disk's clock detached —
  // the same idiom BenchEnv uses for corpus generation.
  uint64_t first = corpus_->body_offset(win.begin_doc);
  uint64_t last_off = corpus_->body_offset(win.end_doc - 1);
  uint64_t span = last_off + corpus_->body_length(win.end_doc - 1) - first;
  SimDisk* disk = corpus_->disk();
  parallel::Executor* saved = disk->executor();
  disk->set_executor(nullptr);
  StatusOr<std::string> bulk =
      span > 0 ? disk->ReadRange(corpus_->rel_path(), first, span)
               : StatusOr<std::string>(std::string());
  disk->set_executor(saved);

  for (size_t i = win.begin_doc; i < win.end_doc; ++i) {
    size_t local = i - win.begin_doc;
    bool good = false;
    if (bulk.ok()) {
      uint64_t off = corpus_->body_offset(i) - first;
      uint64_t len = corpus_->body_length(i);
      std::string_view slice(bulk->data() + off, len);
      if (!corpus_->has_checksums() ||
          Crc32(slice) == corpus_->body_crc(i)) {
        out->bodies[local].assign(slice.data(), slice.size());
        good = true;
      }
    }
    if (!good) {
      // Bad slice (injected corruption, torn transfer) or failed bulk read:
      // fall back to the per-document path, which retries per the disk's
      // policy with the clock attached — recovery costs real (virtual)
      // time, exactly like the non-windowed reader.
      if (bulk.ok()) stats_.crc_reread_docs += 1;
      StatusOr<std::string> body = corpus_->ReadBody(i);
      if (body.ok()) {
        out->bodies[local] = std::move(*body);
      } else {
        out->statuses[local] = body.status();
      }
    }
  }
}

void WindowPrefetcher::Issue(parallel::Executor* executor, size_t w,
                             bool ahead) {
  Slot& slot = slots_[w % 2];
  if (slot.valid && slot.window_index == w) return;  // already issued
  DropSlot(&slot);

  const CorpusWindow& win = windows_[w];
  const DiskOptions& opts = corpus_->disk()->options();
  double issue_time = executor->Now();
  double cost = opts.latency_sec +
                static_cast<double>(win.bytes) / opts.bandwidth_bytes_per_sec;
  slot.ready_time = std::max(issue_time, lane_free_) + cost;
  lane_free_ = slot.ready_time;
  stats_.lane_busy_seconds += cost;
  stats_.bytes_read += win.bytes;
  if (ahead) {
    stats_.windows_prefetched += 1;
    stats_.bytes_read_ahead += win.bytes;
  }

  Fetch(w, &slot.data);
  slot.window_index = w;
  slot.valid = true;
  resident_bytes_ += win.bytes;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, resident_bytes_);
}

const WindowData& WindowPrefetcher::Acquire(parallel::Executor* executor,
                                            size_t w) {
  // In-order discipline: windows stream forward; Reset() rewinds.
  next_acquire_ = w + 1;
  if (w > 0) DropSlot(&slots_[(w - 1) % 2]);

  Slot& slot = slots_[w % 2];
  if (!slot.valid || slot.window_index != w) {
    Issue(executor, w, /*ahead=*/false);
  }
  double now = executor->Now();
  double stall = slot.ready_time - now;
  if (stall > 0.0) {
    executor->ChargeIoTime(stall, 1);
    stats_.stall_seconds += stall;
  }
  stats_.windows_fetched += 1;

  if (prefetch_ && w + 1 < windows_.size()) {
    Issue(executor, w + 1, /*ahead=*/true);
  }
  return slot.data;
}

}  // namespace hpa::io
