#ifndef HPA_IO_CSV_H_
#define HPA_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/sim_disk.h"

/// \file
/// Minimal RFC-4180-style CSV: quoting-aware writer and parser for the
/// workflow's materialized outputs (cluster assignments, term rankings).
/// Fields containing commas, quotes, or newlines are double-quoted with
/// embedded quotes doubled.

namespace hpa::io {

/// In-memory CSV table; row 0 is conventionally the header.
struct CsvTable {
  std::vector<std::vector<std::string>> rows;

  size_t num_rows() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// Index of `name` in the header row, or -1.
  int ColumnIndex(std::string_view name) const;
};

/// Escapes one field per RFC 4180 (quotes only when needed).
std::string CsvEscape(std::string_view field);

/// Serializes `table` ("\n" line endings).
std::string CsvSerialize(const CsvTable& table);

/// Parses CSV text. Handles quoted fields, doubled quotes, embedded
/// commas/newlines, and both \n and \r\n endings. Returns Corruption on
/// unterminated quotes. A trailing newline does not produce an empty row.
StatusOr<CsvTable> CsvParse(std::string_view text);

/// Writes `table` to `rel_path` on `disk`.
Status WriteCsv(SimDisk* disk, const std::string& rel_path,
                const CsvTable& table);

/// Reads and parses `rel_path` from `disk`.
StatusOr<CsvTable> ReadCsv(SimDisk* disk, const std::string& rel_path);

}  // namespace hpa::io

#endif  // HPA_IO_CSV_H_
