#ifndef HPA_IO_CORPUS_WINDOW_H_
#define HPA_IO_CORPUS_WINDOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/packed_corpus.h"
#include "parallel/executor.h"

/// \file
/// Windowed view over a PackedCorpusReader: the corpus becomes a sequence
/// of bounded-memory document windows, each one contiguous byte range of
/// the packed file fetched with a single ranged read and CRC-validated per
/// document. This is the I/O substrate of the semi-external execution mode:
/// operators hold at most two windows resident (the one they compute on and
/// the one the prefetcher reads ahead), so corpus size no longer bounds
/// memory.
///
/// The prefetcher models a dedicated I/O lane on the executor's virtual
/// clock: window reads queue on the lane (`ready = max(issue, lane_free) +
/// latency + bytes/bandwidth`), and Acquire() charges only the *stall* —
/// the part of the read not yet hidden behind compute — via
/// Executor::ChargeIoTime. With prefetch on, window w+1 is issued the
/// moment window w is acquired, so its transfer overlaps w's compute; with
/// prefetch off every window is issued at Acquire and the full read cost
/// stalls the clock. Both modes use the same lane arithmetic, which makes
/// the async-vs-sync comparison in `ablation_outofcore` apples-to-apples
/// and exactly replayable.

namespace hpa::io {

/// One window: documents [begin_doc, end_doc), bodies contiguous on disk.
struct CorpusWindow {
  size_t begin_doc = 0;
  size_t end_doc = 0;  ///< exclusive
  uint64_t bytes = 0;  ///< sum of body lengths in the window
};

/// Splits `corpus` into contiguous windows of at most `window_bytes` of
/// body payload each. Every window holds at least one document, so a
/// single document larger than the budget gets a window of its own
/// (bounded memory then degrades gracefully to bounded-per-document).
/// `window_bytes == 0` means "one window spanning the whole corpus".
std::vector<CorpusWindow> PlanWindows(const PackedCorpusReader& corpus,
                                      uint64_t window_bytes);

/// Deterministic prefetch accounting, surfaced on phase counters and the
/// ablation JSON tails.
struct PrefetchStats {
  uint64_t windows_fetched = 0;      ///< windows handed to Acquire()
  uint64_t windows_prefetched = 0;   ///< of those, issued ahead of Acquire
  uint64_t bytes_read = 0;           ///< payload bytes fetched (all windows)
  uint64_t bytes_read_ahead = 0;     ///< payload bytes issued ahead
  double stall_seconds = 0.0;        ///< read time NOT hidden by compute
  double lane_busy_seconds = 0.0;    ///< total modeled lane transfer time
  uint64_t crc_reread_docs = 0;      ///< per-doc re-reads after a bad slice
  uint64_t high_water_bytes = 0;     ///< max corpus payload resident at once

  /// Fraction of lane time hidden behind compute (0 when nothing was read).
  double OverlapRatio() const {
    if (lane_busy_seconds <= 0.0) return 0.0;
    double hidden = lane_busy_seconds - stall_seconds;
    if (hidden < 0.0) hidden = 0.0;
    return hidden / lane_busy_seconds;
  }
};

/// Fetched window contents. `statuses[i - begin_doc]` is OK when
/// `bodies[i - begin_doc]` holds the validated payload of document i;
/// otherwise it carries the read/corruption error for quarantine.
struct WindowData {
  size_t begin_doc = 0;
  size_t end_doc = 0;
  std::vector<std::string> bodies;
  std::vector<hpa::Status> statuses;
};

/// Double-buffered window reader with an optional depth-1 async prefetch
/// lane. Windows must be acquired in order 0..num_windows()-1 from OUTSIDE
/// any parallel region (Acquire charges stall time at top level, where the
/// simulated executor advances its clock directly); Reset() rewinds for
/// multi-pass consumers (one K-means iteration = one pass). Stats
/// accumulate across passes.
class WindowPrefetcher {
 public:
  /// `corpus` must outlive the prefetcher. `window_bytes == 0` spans the
  /// corpus with one window.
  WindowPrefetcher(const PackedCorpusReader* corpus, uint64_t window_bytes,
                   bool prefetch);

  size_t num_windows() const { return windows_.size(); }
  const CorpusWindow& window(size_t w) const { return windows_[w]; }
  uint64_t window_bytes() const { return window_bytes_; }
  bool prefetch_enabled() const { return prefetch_; }

  /// Fetches (or completes the prefetched read of) window `w`, charging
  /// any un-hidden read time to `executor`, and issues window w+1 on the
  /// lane when prefetch is on. Must be called in order; the previous
  /// window is released automatically.
  const WindowData& Acquire(parallel::Executor* executor, size_t w);

  /// Drops resident windows and rewinds to window 0 for another pass.
  void Reset();

  const PrefetchStats& stats() const { return stats_; }

 private:
  struct Slot {
    WindowData data;
    size_t window_index = 0;
    double ready_time = 0.0;
    bool valid = false;
  };

  /// Models the lane read and performs the actual transfer for window `w`.
  void Issue(parallel::Executor* executor, size_t w, bool ahead);
  void Fetch(size_t w, WindowData* out);
  void DropSlot(Slot* slot);

  const PackedCorpusReader* corpus_;
  uint64_t window_bytes_;
  bool prefetch_;
  std::vector<CorpusWindow> windows_;
  Slot slots_[2];  ///< slot for window w is slots_[w % 2]
  size_t next_acquire_ = 0;
  double lane_free_ = 0.0;
  uint64_t resident_bytes_ = 0;
  PrefetchStats stats_;
};

}  // namespace hpa::io

#endif  // HPA_IO_CORPUS_WINDOW_H_
