#include "io/csv.h"

namespace hpa::io {

int CsvTable::ColumnIndex(std::string_view name) const {
  if (rows.empty()) return -1;
  for (size_t i = 0; i < rows[0].size(); ++i) {
    if (rows[0][i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvSerialize(const CsvTable& table) {
  std::string out;
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  }
  return out;
}

StatusOr<CsvTable> CsvParse(std::string_view text) {
  CsvTable table;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has at least one field character/comma

  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    table.rows.push_back(std::move(row));
    row.clear();
    field_started = false;
  };

  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        field_started = true;
        ++i;
        break;
      case '\r':
        // Swallow; the following \n (if any) ends the row.
        ++i;
        if (i >= text.size() || text[i] != '\n') end_row();
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::Corruption("CSV ends inside a quoted field");
  }
  if (field_started || !field.empty()) end_row();
  return table;
}

Status WriteCsv(SimDisk* disk, const std::string& rel_path,
                const CsvTable& table) {
  return disk->WriteFile(rel_path, CsvSerialize(table));
}

StatusOr<CsvTable> ReadCsv(SimDisk* disk, const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(std::string text, disk->ReadFile(rel_path));
  return CsvParse(text);
}

}  // namespace hpa::io
