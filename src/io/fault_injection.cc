#include "io/fault_injection.h"

#include "common/checksum.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace hpa::io {

namespace {

/// Maps a 64-bit hash to a uniform double in [0, 1).
double ToUnit(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Hash of the request identity for one fault class. `salt` separates the
/// per-class decision streams; `attempt` is folded in only for classes
/// that may resolve differently on a retry.
uint64_t RequestHash(uint64_t seed, uint64_t salt, std::string_view op,
                     std::string_view key, uint64_t offset, uint64_t attempt) {
  uint64_t h = StableHash64(op, seed ^ salt);
  h = StableHash64(key, h);
  h ^= (offset + 1) * 0x9E3779B97F4A7C15ULL;
  h ^= (attempt + 1) * 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 30;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 27;
  return h;
}

constexpr uint64_t kPermanentSalt = 0xA1;
constexpr uint64_t kTransientSalt = 0xB2;
constexpr uint64_t kCorruptionSalt = 0xC3;
constexpr uint64_t kSpikeSalt = 0xD4;

}  // namespace

Status FaultProfile::Validate() const {
  struct RateField {
    const char* name;
    double value;
  };
  const RateField rates[] = {
      {"transient_rate", transient_rate},
      {"permanent_rate", permanent_rate},
      {"corruption_rate", corruption_rate},
      {"latency_spike_rate", latency_spike_rate},
  };
  for (const RateField& r : rates) {
    // Also rejects NaN: !(x >= 0 && x <= 1) holds for NaN.
    if (!(r.value >= 0.0 && r.value <= 1.0)) {
      return Status::InvalidArgument(
          StrFormat("FaultProfile.%s = %g is outside [0, 1]", r.name,
                    r.value));
    }
  }
  if (!(latency_spike_sec >= 0.0)) {
    return Status::InvalidArgument(StrFormat(
        "FaultProfile.latency_spike_sec = %g is negative", latency_spike_sec));
  }
  return Status::OK();
}

FaultInjector::FaultInjector(const FaultProfile& profile) : profile_(profile) {
  Status s = profile_.Validate();
  HPA_CHECK(s.ok(), "%s", s.ToString().c_str());
}

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kPermanent:
      return "permanent";
    case FaultKind::kCorruption:
      return "corruption";
    case FaultKind::kLatencySpike:
      return "latency-spike";
  }
  return "unknown";
}

FaultDecision FaultInjector::Decide(std::string_view op, std::string_view key,
                                    uint64_t offset, int attempt) {
  FaultDecision decision;
  if (!profile_.Enabled()) return decision;
  const uint64_t a = static_cast<uint64_t>(attempt < 0 ? 0 : attempt);

  // Permanent faults are decided WITHOUT the attempt number: once a request
  // is chosen as permanently failed, every retry fails too.
  if (profile_.permanent_rate > 0.0) {
    uint64_t h = RequestHash(profile_.seed, kPermanentSalt, op, key, offset,
                             /*attempt=*/0);
    if (ToUnit(h) < profile_.permanent_rate) {
      decision.kind = FaultKind::kPermanent;
      permanent_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }

  if (profile_.transient_rate > 0.0) {
    uint64_t h =
        RequestHash(profile_.seed, kTransientSalt, op, key, offset, a);
    if (ToUnit(h) < profile_.transient_rate) {
      decision.kind = FaultKind::kTransient;
      transient_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }

  if (profile_.corruption_rate > 0.0) {
    uint64_t h =
        RequestHash(profile_.seed, kCorruptionSalt, op, key, offset, a);
    if (ToUnit(h) < profile_.corruption_rate) {
      decision.kind = FaultKind::kCorruption;
      decision.corrupt_at = RequestHash(profile_.seed, kCorruptionSalt ^ 0xFF,
                                        op, key, offset, a);
      corruption_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }

  if (profile_.latency_spike_rate > 0.0) {
    uint64_t h = RequestHash(profile_.seed, kSpikeSalt, op, key, offset, a);
    if (ToUnit(h) < profile_.latency_spike_rate) {
      decision.kind = FaultKind::kLatencySpike;
      decision.extra_latency_sec = profile_.latency_spike_sec;
      spikes_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }

  return decision;
}

void FaultInjector::CorruptPayload(const FaultDecision& decision,
                                   std::string* payload) {
  if (payload == nullptr || payload->empty()) return;
  size_t pos = static_cast<size_t>(decision.corrupt_at % payload->size());
  // XOR with a non-zero mask always changes the byte, so corruption is
  // never a silent no-op.
  (*payload)[pos] = static_cast<char>((*payload)[pos] ^ 0x5A);
}

void FaultInjector::ResetCounters() {
  transient_.store(0, std::memory_order_relaxed);
  permanent_.store(0, std::memory_order_relaxed);
  corruption_.store(0, std::memory_order_relaxed);
  spikes_.store(0, std::memory_order_relaxed);
}

}  // namespace hpa::io
