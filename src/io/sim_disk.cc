#include "io/sim_disk.h"

#include <utility>

#include "io/file_io.h"

namespace hpa::io {

namespace {
// Flush threshold for buffered writers; large enough that the backing
// filesystem sees sequential block writes.
constexpr size_t kWriterFlushBytes = 1 << 20;
}  // namespace

SimDisk::SimDisk(const DiskOptions& options, std::string root,
                 parallel::Executor* executor)
    : options_(options), root_(std::move(root)), executor_(executor) {}

std::string SimDisk::AbsPath(const std::string& rel_path) const {
  return root_ + "/" + rel_path;
}

void SimDisk::ChargeRequest(uint64_t bytes) {
  if (executor_ == nullptr) return;
  double seconds = options_.latency_sec +
                   static_cast<double>(bytes) /
                       options_.bandwidth_bytes_per_sec;
  executor_->ChargeIoTime(seconds, options_.channels);
}

void SimDisk::ChargeBytes(uint64_t bytes) {
  if (executor_ == nullptr) return;
  double seconds =
      static_cast<double>(bytes) / options_.bandwidth_bytes_per_sec;
  executor_->ChargeIoTime(seconds, options_.channels);
}

Status SimDisk::WriteFile(const std::string& rel_path,
                          std::string_view contents) {
  HPA_RETURN_IF_ERROR(WriteWholeFile(AbsPath(rel_path), contents));
  bytes_written_ += contents.size();
  ChargeRequest(contents.size());
  return Status::OK();
}

StatusOr<std::string> SimDisk::ReadFile(const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(std::string contents,
                       ReadWholeFile(AbsPath(rel_path)));
  bytes_read_ += contents.size();
  ChargeRequest(contents.size());
  return contents;
}

StatusOr<std::string> SimDisk::ReadRange(const std::string& rel_path,
                                         uint64_t offset, uint64_t length) {
  HPA_ASSIGN_OR_RETURN(std::string contents,
                       ReadFileRange(AbsPath(rel_path), offset, length));
  bytes_read_ += contents.size();
  ChargeRequest(contents.size());
  return contents;
}

StatusOr<std::unique_ptr<SimWriter>> SimDisk::OpenWriter(
    const std::string& rel_path) {
  std::string abs = AbsPath(rel_path);
  // Truncate eagerly so a writer that never flushes still leaves an empty
  // file, as a real create would.
  HPA_RETURN_IF_ERROR(WriteWholeFile(abs, ""));
  ChargeRequest(0);  // open/seek cost
  return std::unique_ptr<SimWriter>(new SimWriter(this, std::move(abs)));
}

StatusOr<std::unique_ptr<SimReader>> SimDisk::OpenReader(
    const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(std::string contents,
                       ReadWholeFile(AbsPath(rel_path)));
  bytes_read_ += contents.size();
  ChargeRequest(contents.size());
  return std::unique_ptr<SimReader>(new SimReader(std::move(contents)));
}

bool SimDisk::Exists(const std::string& rel_path) const {
  return FileExists(AbsPath(rel_path));
}

StatusOr<uint64_t> SimDisk::FileSize(const std::string& rel_path) const {
  return io::FileSize(AbsPath(rel_path));
}

Status SimDisk::Remove(const std::string& rel_path) {
  return RemoveFile(AbsPath(rel_path));
}

SimWriter::SimWriter(SimDisk* disk, std::string abs_path)
    : disk_(disk), abs_path_(std::move(abs_path)) {}

SimWriter::~SimWriter() {
  if (!closed_) Close();  // best effort; errors unobservable here
}

Status SimWriter::Append(std::string_view data) {
  if (closed_) return Status::FailedPrecondition("writer already closed");
  buffer_.append(data);
  bytes_written_ += data.size();
  disk_->bytes_written_ += data.size();
  disk_->ChargeBytes(data.size());
  if (buffer_.size() >= kWriterFlushBytes) return Flush();
  return Status::OK();
}

Status SimWriter::Flush() {
  if (buffer_.empty()) return Status::OK();
  Status s = AppendToFile(abs_path_, buffer_);
  buffer_.clear();
  return s;
}

Status SimWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  return Flush();
}

bool SimReader::NextLine(std::string_view* line) {
  if (pos_ >= contents_.size()) return false;
  size_t nl = contents_.find('\n', pos_);
  if (nl == std::string::npos) {
    *line = std::string_view(contents_).substr(pos_);
    pos_ = contents_.size();
  } else {
    *line = std::string_view(contents_).substr(pos_, nl - pos_);
    pos_ = nl + 1;
  }
  return true;
}

}  // namespace hpa::io
