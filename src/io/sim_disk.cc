#include "io/sim_disk.h"

#include <utility>

#include "common/checksum.h"
#include "common/string_util.h"
#include "io/file_io.h"

namespace hpa::io {

namespace {
// Flush threshold for buffered writers; large enough that the backing
// filesystem sees sequential block writes.
constexpr size_t kWriterFlushBytes = 1 << 20;
}  // namespace

SimDisk::SimDisk(const DiskOptions& options, std::string root,
                 parallel::Executor* executor)
    : options_(options), root_(std::move(root)), executor_(executor) {}

std::string SimDisk::AbsPath(const std::string& rel_path) const {
  return root_ + "/" + rel_path;
}

void SimDisk::ChargeRequest(uint64_t bytes) {
  if (executor_ == nullptr) return;
  double seconds = options_.latency_sec +
                   static_cast<double>(bytes) /
                       options_.bandwidth_bytes_per_sec;
  executor_->ChargeIoTime(seconds, options_.channels);
}

void SimDisk::ChargeBytes(uint64_t bytes) {
  if (executor_ == nullptr) return;
  double seconds =
      static_cast<double>(bytes) / options_.bandwidth_bytes_per_sec;
  executor_->ChargeIoTime(seconds, options_.channels);
}

void SimDisk::NoteRetry(double backoff_sec) {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (executor_ != nullptr && backoff_sec > 0.0) {
    executor_->ChargeIoTime(backoff_sec, options_.channels);
  }
}

StatusOr<std::string> SimDisk::FaultAwareRead(
    std::string_view op, const std::string& rel_path, uint64_t offset,
    int attempt_base,
    const std::function<StatusOr<std::string>()>& read_fn) {
  const uint64_t token = StableHash64(rel_path) + offset;
  return RetryCall(
      retry_policy_, token,
      [&](int attempt) -> StatusOr<std::string> {
        attempt += attempt_base;
        FaultDecision fault;
        if (injector_ != nullptr) {
          fault = injector_->Decide(op, rel_path, offset, attempt);
        }
        if (fault.kind == FaultKind::kTransient ||
            fault.kind == FaultKind::kPermanent) {
          // The failed request still costs a seek on the device.
          ChargeRequest(0);
          return Status::IoError(
              StrFormat("injected %s fault reading '%s' @%llu (attempt %d)",
                        std::string(FaultKindName(fault.kind)).c_str(),
                        rel_path.c_str(),
                        static_cast<unsigned long long>(offset), attempt));
        }
        HPA_ASSIGN_OR_RETURN(std::string contents, read_fn());
        if (fault.kind == FaultKind::kLatencySpike && executor_ != nullptr) {
          executor_->ChargeIoTime(fault.extra_latency_sec, options_.channels);
        }
        if (fault.kind == FaultKind::kCorruption) {
          // Silent on this layer; checksummed formats detect it downstream.
          FaultInjector::CorruptPayload(fault, &contents);
        }
        bytes_read_ += contents.size();
        ChargeRequest(contents.size());
        return contents;
      },
      [&](double backoff_sec) { NoteRetry(backoff_sec); });
}

Status SimDisk::WriteFile(const std::string& rel_path,
                          std::string_view contents) {
  HPA_RETURN_IF_ERROR(WriteWholeFile(AbsPath(rel_path), contents));
  bytes_written_ += contents.size();
  ChargeRequest(contents.size());
  return Status::OK();
}

StatusOr<std::string> SimDisk::ReadFile(const std::string& rel_path,
                                        int attempt_base) {
  return FaultAwareRead("read", rel_path, 0, attempt_base,
                        [&] { return ReadWholeFile(AbsPath(rel_path)); });
}

StatusOr<std::string> SimDisk::ReadRange(const std::string& rel_path,
                                         uint64_t offset, uint64_t length,
                                         int attempt_base) {
  return FaultAwareRead("range", rel_path, offset, attempt_base, [&] {
    return ReadFileRange(AbsPath(rel_path), offset, length);
  });
}

StatusOr<std::unique_ptr<SimWriter>> SimDisk::OpenWriter(
    const std::string& rel_path) {
  std::string abs = AbsPath(rel_path);
  // Truncate eagerly so a writer that never flushes still leaves an empty
  // file, as a real create would.
  HPA_RETURN_IF_ERROR(WriteWholeFile(abs, ""));
  ChargeRequest(0);  // open/seek cost
  return std::unique_ptr<SimWriter>(new SimWriter(this, std::move(abs)));
}

StatusOr<std::unique_ptr<SimReader>> SimDisk::OpenReader(
    const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(
      std::string contents,
      FaultAwareRead("read", rel_path, 0, /*attempt_base=*/0,
                     [&] { return ReadWholeFile(AbsPath(rel_path)); }));
  return std::unique_ptr<SimReader>(new SimReader(std::move(contents)));
}

bool SimDisk::Exists(const std::string& rel_path) const {
  return FileExists(AbsPath(rel_path));
}

StatusOr<uint64_t> SimDisk::FileSize(const std::string& rel_path) const {
  return io::FileSize(AbsPath(rel_path));
}

Status SimDisk::Remove(const std::string& rel_path) {
  return RemoveFile(AbsPath(rel_path));
}

SimWriter::SimWriter(SimDisk* disk, std::string abs_path)
    : disk_(disk), abs_path_(std::move(abs_path)) {}

SimWriter::~SimWriter() {
  if (!closed_) Close();  // best effort; errors unobservable here
}

Status SimWriter::Append(std::string_view data) {
  if (closed_) return Status::FailedPrecondition("writer already closed");
  buffer_.append(data);
  bytes_written_ += data.size();
  disk_->bytes_written_ += data.size();
  disk_->ChargeBytes(data.size());
  if (buffer_.size() >= kWriterFlushBytes) return Flush();
  return Status::OK();
}

Status SimWriter::Flush() {
  if (buffer_.empty()) return Status::OK();
  Status s = AppendToFile(abs_path_, buffer_);
  buffer_.clear();
  return s;
}

Status SimWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  return Flush();
}

bool SimReader::NextLine(std::string_view* line) {
  if (pos_ >= contents_.size()) return false;
  size_t nl = contents_.find('\n', pos_);
  if (nl == std::string::npos) {
    *line = std::string_view(contents_).substr(pos_);
    pos_ = contents_.size();
  } else {
    *line = std::string_view(contents_).substr(pos_, nl - pos_);
    pos_ = nl + 1;
  }
  return true;
}

}  // namespace hpa::io
