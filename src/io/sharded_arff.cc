#include "io/sharded_arff.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/string_util.h"
#include "io/arff.h"

namespace hpa::io {

namespace {

// v2 adds the per-shard "checksums" manifest line; v1 stays readable.
constexpr std::string_view kManifestMagicV1 = "HPA-SHARDED-ARFF 1";
constexpr std::string_view kManifestMagicV2 = "HPA-SHARDED-ARFF 2";

std::string ManifestPath(const std::string& base) {
  return base + ".manifest";
}

std::string ShardPath(const std::string& base, int shard) {
  return base + "." + std::to_string(shard);
}

/// Row range of `shard` when `rows` are split as evenly as possible.
std::pair<size_t, size_t> ShardRange(size_t rows, int shards, int shard) {
  size_t s = static_cast<size_t>(shards);
  size_t begin = rows * static_cast<size_t>(shard) / s;
  size_t end = rows * static_cast<size_t>(shard + 1) / s;
  return {begin, end};
}

}  // namespace

Status WriteShardedArffRows(SimDisk* disk, parallel::Executor* executor,
                            const std::string& base_path,
                            const std::string& relation_name,
                            const std::vector<std::string>& attributes,
                            size_t num_rows, int shards,
                            const ShardRowFn& row_fn,
                            const parallel::WorkHint& hint) {
  if (relation_name.find('\n') != std::string::npos) {
    return Status::InvalidArgument("relation name must be single-line");
  }
  shards = std::max(
      1, std::min(shards,
                  static_cast<int>(std::max<size_t>(1, num_rows))));

  // Shard bodies first, one parallel chunk per shard, computing each
  // shard's CRC-32 as it streams out. Whether the writes overlap at the
  // device is up to the disk's channel count.
  std::vector<Status> shard_status(static_cast<size_t>(shards));
  std::vector<uint32_t> shard_crc(static_cast<size_t>(shards), 0);
  executor->ParallelFor(
      0, static_cast<size_t>(shards), 1, hint,
      [&](int worker, size_t sb, size_t se) {
        for (size_t s = sb; s < se; ++s) {
          shard_status[s] = [&]() -> Status {
            auto [begin, end] =
                ShardRange(num_rows, shards, static_cast<int>(s));
            HPA_ASSIGN_OR_RETURN(
                auto writer,
                disk->OpenWriter(ShardPath(base_path, static_cast<int>(s))));
            std::string chunk;
            chunk.reserve(1 << 16);
            uint32_t crc = 0;
            for (size_t r = begin; r < end; ++r) {
              arff_internal::AppendSparseRow(row_fn(worker, r), chunk);
              if (chunk.size() >= (1 << 16)) {
                crc = Crc32(chunk, crc);
                HPA_RETURN_IF_ERROR(writer->Append(chunk));
                chunk.clear();
              }
            }
            crc = Crc32(chunk, crc);
            shard_crc[s] = crc;
            HPA_RETURN_IF_ERROR(writer->Append(chunk));
            return writer->Close();
          }();
        }
      });
  for (const Status& s : shard_status) {
    HPA_RETURN_IF_ERROR(s);
  }

  // Manifest last (serial; it is small — header written once, not per
  // shard). Writing it after the shards makes it the commit record: no
  // manifest, no dataset.
  Status manifest_status;
  executor->RunSerial(parallel::WorkHint{}, [&] {
    manifest_status = [&]() -> Status {
      std::string manifest(kManifestMagicV2);
      manifest += "\nrelation ";
      manifest += relation_name;
      manifest += "\nshards ";
      AppendUint(manifest, static_cast<uint64_t>(shards));
      for (int s = 0; s < shards; ++s) {
        auto [b, e] = ShardRange(num_rows, shards, s);
        manifest += ' ';
        AppendUint(manifest, e - b);
      }
      manifest += "\nchecksums";
      for (int s = 0; s < shards; ++s) {
        manifest += ' ';
        AppendUint(manifest, shard_crc[static_cast<size_t>(s)]);
      }
      manifest += "\nattributes ";
      AppendUint(manifest, attributes.size());
      manifest += '\n';
      for (const std::string& attr : attributes) {
        manifest += attr;
        manifest += '\n';
      }
      return disk->WriteFile(ManifestPath(base_path), manifest);
    }();
  });
  return manifest_status;
}

Status WriteShardedArff(SimDisk* disk, parallel::Executor* executor,
                        const std::string& base_path,
                        const std::string& relation_name,
                        const std::vector<std::string>& attributes,
                        const containers::SparseMatrix& matrix, int shards) {
  if (attributes.size() != matrix.num_cols) {
    return Status::InvalidArgument(
        "attribute count " + std::to_string(attributes.size()) +
        " != matrix columns " + std::to_string(matrix.num_cols));
  }
  return WriteShardedArffRows(
      disk, executor, base_path, relation_name, attributes,
      matrix.num_rows(), shards,
      [&matrix](int, size_t r) -> const containers::SparseVector& {
        return matrix.rows[r];
      });
}

StatusOr<ArffShardedResult> ReadShardedArff(SimDisk* disk,
                                            parallel::Executor* executor,
                                            const std::string& base_path,
                                            FaultPolicy policy) {
  ArffShardedResult result;
  int shards = 0;
  std::vector<uint64_t> shard_rows;
  std::vector<uint32_t> shard_crc;
  bool has_checksums = false;

  Status manifest_status;
  executor->RunSerial(parallel::WorkHint{}, [&] {
    manifest_status = [&]() -> Status {
      HPA_ASSIGN_OR_RETURN(std::string manifest,
                           disk->ReadFile(ManifestPath(base_path)));
      std::vector<std::string_view> lines = Split(manifest, '\n');
      size_t i = 0;
      if (lines.empty()) {
        return Status::Corruption("empty sharded-ARFF manifest in " +
                                  base_path);
      }
      if (Trim(lines[i]) == kManifestMagicV2) {
        has_checksums = true;
      } else if (Trim(lines[i]) != kManifestMagicV1) {
        return Status::Corruption("bad sharded-ARFF magic in " + base_path);
      }
      ++i;
      if (i >= lines.size() || !StartsWith(lines[i], "relation ")) {
        return Status::Corruption("missing relation line in " + base_path);
      }
      result.relation_name = std::string(Trim(lines[i].substr(9)));
      ++i;
      if (i >= lines.size() || !StartsWith(lines[i], "shards ")) {
        return Status::Corruption("missing shards line in " + base_path);
      }
      {
        std::vector<std::string_view> parts = Split(Trim(lines[i]), ' ');
        int64_t n = 0;
        if (parts.size() < 2 || !ParseInt64(parts[1], &n) || n < 1 ||
            parts.size() != static_cast<size_t>(n) + 2) {
          return Status::Corruption("malformed shards line in " + base_path);
        }
        shards = static_cast<int>(n);
        for (size_t p = 2; p < parts.size(); ++p) {
          int64_t rows = 0;
          if (!ParseInt64(parts[p], &rows) || rows < 0) {
            return Status::Corruption("bad shard row count in " + base_path);
          }
          shard_rows.push_back(static_cast<uint64_t>(rows));
        }
      }
      ++i;
      if (has_checksums) {
        if (i >= lines.size() || !StartsWith(lines[i], "checksums")) {
          return Status::Corruption("missing checksums line in " + base_path);
        }
        std::vector<std::string_view> parts = Split(Trim(lines[i]), ' ');
        if (parts.size() != static_cast<size_t>(shards) + 1) {
          return Status::Corruption("malformed checksums line in " +
                                    base_path);
        }
        for (size_t p = 1; p < parts.size(); ++p) {
          int64_t crc = 0;
          if (!ParseInt64(parts[p], &crc) || crc < 0 || crc > 0xFFFFFFFFll) {
            return Status::Corruption("bad shard checksum in " + base_path);
          }
          shard_crc.push_back(static_cast<uint32_t>(crc));
        }
        ++i;
      }
      if (i >= lines.size() || !StartsWith(lines[i], "attributes ")) {
        return Status::Corruption("missing attributes line in " + base_path);
      }
      int64_t attr_count = 0;
      if (!ParseInt64(Trim(lines[i].substr(11)), &attr_count) ||
          attr_count < 0 ||
          lines.size() < i + 1 + static_cast<size_t>(attr_count)) {
        return Status::Corruption("malformed attribute count in " +
                                  base_path);
      }
      ++i;
      result.attributes.reserve(static_cast<size_t>(attr_count));
      for (int64_t a = 0; a < attr_count; ++a) {
        result.attributes.emplace_back(lines[i + static_cast<size_t>(a)]);
      }
      return Status::OK();
    }();
  });
  HPA_RETURN_IF_ERROR(manifest_status);

  result.data.num_cols = static_cast<uint32_t>(result.attributes.size());
  uint64_t total_rows = 0;
  std::vector<uint64_t> shard_offset(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shard_offset[static_cast<size_t>(s)] = total_rows;
    total_rows += shard_rows[static_cast<size_t>(s)];
  }
  result.data.rows.resize(total_rows);

  std::vector<Status> shard_status(static_cast<size_t>(shards));
  std::vector<int> shard_attempts(static_cast<size_t>(shards), 1);
  executor->ParallelFor(
      0, static_cast<size_t>(shards), 1, parallel::WorkHint{},
      [&](int, size_t sb, size_t se) {
        for (size_t s = sb; s < se; ++s) {
          if (executor->stop_requested()) return;
          shard_status[s] = [&]() -> Status {
            const std::string shard_path =
                ShardPath(base_path, static_cast<int>(s));

            // Fetch the shard, verifying its CRC when the manifest carries
            // one; a mismatch is re-read per the disk's retry policy (the
            // attempt_base shifts the fault injector's attempt numbering so
            // the re-read is a new attempt, not a replay).
            std::string contents;
            {
              const RetryPolicy& retry = disk->retry_policy();
              const int max_attempts = std::max(1, retry.max_attempts);
              const uint64_t token = StableHash64(shard_path);
              for (int attempt = 0;; ++attempt) {
                shard_attempts[s] = attempt + 1;
                if (attempt > 0) {
                  disk->NoteRetry(retry.BackoffSeconds(attempt - 1, token));
                }
                HPA_ASSIGN_OR_RETURN(contents,
                                     disk->ReadFile(shard_path, attempt));
                if (!has_checksums || Crc32(contents) == shard_crc[s]) break;
                if (attempt + 1 >= max_attempts) {
                  return Status::Corruption(StrFormat(
                      "checksum mismatch for shard '%s' after %d attempt(s)",
                      shard_path.c_str(), attempt + 1));
                }
              }
            }

            uint64_t row_index = shard_offset[s];
            uint64_t expected_end = shard_offset[s] + shard_rows[s];
            size_t line_number = 0;
            size_t pos = 0;
            while (pos < contents.size()) {
              size_t nl = contents.find('\n', pos);
              std::string_view line =
                  nl == std::string::npos
                      ? std::string_view(contents).substr(pos)
                      : std::string_view(contents).substr(pos, nl - pos);
              pos = nl == std::string::npos ? contents.size() : nl + 1;
              ++line_number;
              std::string_view trimmed = Trim(line);
              if (trimmed.empty()) continue;
              if (row_index >= expected_end) {
                return Status::Corruption(
                    StrFormat("shard %zu has more rows than the manifest "
                              "declares",
                              s));
              }
              containers::SparseVector row;
              HPA_RETURN_IF_ERROR(arff_internal::ParseSparseRow(
                  trimmed, line_number, result.data.num_cols, &row));
              result.data.rows[row_index++] = std::move(row);
            }
            if (row_index != expected_end) {
              return Status::Corruption(
                  StrFormat("shard %zu is truncated: expected %llu rows",
                            s,
                            static_cast<unsigned long long>(shard_rows[s])));
            }
            return Status::OK();
          }();
          if (!shard_status[s].ok() && policy == FaultPolicy::kFailFast) {
            // Cancel the remaining shard chunks; the error is returned
            // below in shard-index order.
            executor->RequestStop();
            return;
          }
        }
      });

  if (policy == FaultPolicy::kFailFast) {
    for (const Status& s : shard_status) {
      HPA_RETURN_IF_ERROR(s);
    }
    return result;
  }

  // kRetryThenSkip: quarantine failed shards, clearing any rows a shard
  // managed to parse before failing so consumers see it as cleanly absent.
  for (size_t s = 0; s < static_cast<size_t>(shards); ++s) {
    if (shard_status[s].ok()) continue;
    for (uint64_t r = shard_offset[s]; r < shard_offset[s] + shard_rows[s];
         ++r) {
      result.data.rows[r] = containers::SparseVector{};
    }
    result.rows_quarantined += shard_rows[s];
    result.quarantine.Add(ShardPath(base_path, static_cast<int>(s)),
                          shard_status[s], shard_attempts[s]);
  }
  result.quarantine.SortById();
  return result;
}

}  // namespace hpa::io
