#ifndef HPA_IO_FILE_IO_H_
#define HPA_IO_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/retry.h"
#include "common/status.h"

/// \file
/// Plain (un-simulated) file helpers used by SimDisk's backing store and by
/// utilities that read real corpora from disk.

namespace hpa::io {

/// Reads the entire file at `path` into a string.
StatusOr<std::string> ReadWholeFile(const std::string& path);

/// Like ReadWholeFile but retries transient failures per `retry`. Backoff is
/// accounted (not slept): real-file retries here are immediate, and callers
/// that simulate time charge the backoff themselves via SimDisk. If
/// `attempts` is non-null it receives the number of tries performed.
StatusOr<std::string> ReadWholeFile(const std::string& path,
                                    const RetryPolicy& retry,
                                    int* attempts = nullptr);

/// Reads `length` bytes starting at `offset`. Fails with OutOfRange if the
/// file is shorter than `offset + length`.
StatusOr<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length);

/// Range read with bounded retry (see the retrying ReadWholeFile overload).
StatusOr<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length, const RetryPolicy& retry,
                                    int* attempts = nullptr);

/// Creates/truncates the file at `path` with `contents`, atomically: the
/// bytes are written to a sibling temp file which is then renamed over
/// `path`, so a crash mid-write never leaves a truncated file at `path` —
/// readers see either the old contents or the new, never a prefix. Parent
/// directories must exist.
Status WriteWholeFile(const std::string& path, std::string_view contents);

/// Appends `contents` to the file at `path`, creating it if absent.
/// NOT atomic: a crash mid-append can leave a partial record at the tail.
/// Use only for logs and other formats whose readers tolerate a torn tail;
/// durable artifacts should be rewritten via WriteWholeFile.
Status AppendToFile(const std::string& path, std::string_view contents);

/// Size in bytes of the file at `path`.
StatusOr<uint64_t> FileSize(const std::string& path);

/// True iff a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Deletes the file if it exists (missing file is not an error).
Status RemoveFile(const std::string& path);

/// Recursively creates `dir` (and parents) if absent.
Status MakeDirs(const std::string& dir);

/// Creates a unique fresh directory under the system temp dir, named
/// `<prefix>XXXXXX`. Caller owns cleanup.
StatusOr<std::string> MakeTempDir(const std::string& prefix);

/// Recursively removes `dir` and its contents.
Status RemoveDirRecursive(const std::string& dir);

}  // namespace hpa::io

#endif  // HPA_IO_FILE_IO_H_
