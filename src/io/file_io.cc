#include "io/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/checksum.h"

namespace hpa::io {

namespace fs = std::filesystem;

namespace {
std::string ErrnoMessage(const std::string& context, const std::string& path) {
  return context + " '" + path + "': " + std::strerror(errno);
}
}  // namespace

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError(ErrnoMessage("open", path));
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError(ErrnoMessage("read", path));
  return out;
}

StatusOr<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError(ErrnoMessage("open", path));
  std::string out;
  out.resize(length);
  bool seek_failed =
      std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0;
  size_t got = seek_failed ? 0 : std::fread(out.data(), 1, length, f);
  std::fclose(f);
  if (seek_failed) return Status::IoError(ErrnoMessage("seek", path));
  if (got != length) {
    return Status::OutOfRange("short read from '" + path + "': wanted " +
                              std::to_string(length) + " bytes at offset " +
                              std::to_string(offset) + ", got " +
                              std::to_string(got));
  }
  return out;
}

StatusOr<std::string> ReadWholeFile(const std::string& path,
                                    const RetryPolicy& retry, int* attempts) {
  return RetryCall(
      retry, StableHash64(path),
      [&](int) { return ReadWholeFile(path); }, [](double) {}, attempts);
}

StatusOr<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length, const RetryPolicy& retry,
                                    int* attempts) {
  return RetryCall(
      retry, StableHash64(path) + offset,
      [&](int) { return ReadFileRange(path, offset, length); }, [](double) {},
      attempts);
}

Status WriteWholeFile(const std::string& path, std::string_view contents) {
  // Write-then-rename: fs::rename over an existing file is atomic on POSIX,
  // so `path` never holds a partially written payload.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError(ErrnoMessage("create", tmp));
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool close_failed = std::fclose(f) != 0;
  if (written != contents.size() || close_failed) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    return Status::IoError(ErrnoMessage("write", tmp));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    return Status::IoError("rename '" + tmp + "' -> '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status AppendToFile(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IoError(ErrnoMessage("open-append", path));
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool close_failed = std::fclose(f) != 0;
  if (written != contents.size() || close_failed) {
    return Status::IoError(ErrnoMessage("append", path));
  }
  return Status::OK();
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) {
    return Status::IoError("stat '" + path + "': " + ec.message());
  }
  return size;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IoError("remove '" + path + "': " + ec.message());
  return Status::OK();
}

Status MakeDirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("mkdir '" + dir + "': " + ec.message());
  return Status::OK();
}

StatusOr<std::string> MakeTempDir(const std::string& prefix) {
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) return Status::IoError("temp dir: " + ec.message());
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path candidate =
        base / (prefix + std::to_string(std::rand() % 1000000));
    if (fs::create_directory(candidate, ec) && !ec) {
      return candidate.string();
    }
  }
  return Status::IoError("could not create a unique temp dir under " +
                         base.string());
}

Status RemoveDirRecursive(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) return Status::IoError("rmdir '" + dir + "': " + ec.message());
  return Status::OK();
}

}  // namespace hpa::io
