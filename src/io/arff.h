#ifndef HPA_IO_ARFF_H_
#define HPA_IO_ARFF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "containers/sparse_matrix.h"
#include "io/sim_disk.h"

/// \file
/// Sparse ARFF (Attribute-Relation File Format, WEKA) writer and parser.
///
/// This is the interchange format the paper's discrete workflow dumps
/// between TF/IDF and K-means, and the reason that boundary cannot be
/// parallelized: ARFF is a single sequential text file ("file formats are
/// often designed in such a way that parallel I/O becomes hard", §3.2).
///
/// Format produced/consumed:
///   % comment lines
///   @relation <name>
///   @attribute <name> numeric          (one per column, in column order)
///   @data
///   {<idx> <value>, <idx> <value>, ...}   (sparse rows; ascending idx)

namespace hpa::io {

/// A parsed ARFF relation: names plus the sparse data matrix.
struct ArffRelation {
  std::string relation_name;
  std::vector<std::string> attributes;
  containers::SparseMatrix data;
};

/// Writes `matrix` as sparse ARFF to `rel_path` on `disk`. `attributes`
/// must have exactly `matrix.num_cols` entries. Runs on the calling thread
/// (serial by format design); simulated write time accrues on the disk's
/// executor.
Status WriteSparseArff(SimDisk* disk, const std::string& rel_path,
                       const std::string& relation_name,
                       const std::vector<std::string>& attributes,
                       const containers::SparseMatrix& matrix);

/// Parses a sparse ARFF file written by WriteSparseArff (also accepts
/// comments, blank lines, and case-insensitive keywords). Returns
/// Corruption for malformed content.
StatusOr<ArffRelation> ReadSparseArff(SimDisk* disk,
                                      const std::string& rel_path);

namespace arff_internal {

/// Parses one sparse data row "{idx value, idx value}" into `row` (shared
/// by the plain and sharded readers). `line_number` is for diagnostics.
Status ParseSparseRow(std::string_view line, size_t line_number,
                      uint32_t num_cols, containers::SparseVector* row);

/// Appends one sparse row in "{idx value,...}\n" text form to `out`.
void AppendSparseRow(const containers::SparseVector& row, std::string& out);

}  // namespace arff_internal

}  // namespace hpa::io

#endif  // HPA_IO_ARFF_H_
