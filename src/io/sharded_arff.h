#ifndef HPA_IO_SHARDED_ARFF_H_
#define HPA_IO_SHARDED_ARFF_H_

#include <functional>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "containers/sparse_matrix.h"
#include "io/sim_disk.h"
#include "parallel/executor.h"

/// \file
/// Sharded sparse-ARFF: HPA's answer to the paper's §3.2 open challenge
/// ("Parallelizing output is important as well. However, file formats are
/// often designed in such a way that parallel I/O becomes hard").
///
/// The dataset is split row-wise into N shard files that are written and
/// read *concurrently*; the attribute header lives once in a manifest
/// instead of being duplicated per shard:
///
///   <base>.manifest   — text: magic, relation, shard count + row counts,
///                       per-shard CRC-32 checksums (v2), attribute list
///   <base>.0 ... <base>.N-1 — sparse data rows only ("{idx value,...}")
///
/// Shards are written (in parallel) *before* the manifest, so the manifest
/// doubles as the commit record: a crash mid-write leaves either the old
/// dataset or no manifest, never a manifest pointing at half-written
/// shards. The v2 manifest ("HPA-SHARDED-ARFF 2") records each shard's
/// CRC-32; the reader verifies it and re-reads per the disk's retry policy
/// on mismatch. v1 manifests remain readable (verification disabled).
///
/// Whether this actually helps depends on the storage device: on the
/// single-channel local HDD of Figure 3 the shard writes serialize at the
/// device anyway, while on multi-channel storage the output phase finally
/// scales — exactly the device-dependence `bench/ablation_parallel_output`
/// demonstrates.

namespace hpa::io {

/// Parsed sharded dataset.
struct ArffShardedResult {
  std::string relation_name;
  std::vector<std::string> attributes;
  containers::SparseMatrix data;

  /// Shards skipped under FaultPolicy::kRetryThenSkip (empty otherwise).
  /// Rows of a quarantined shard are present but empty, preserving row
  /// numbering for the surviving shards.
  QuarantineList quarantine;

  /// Total data rows lost to quarantined shards.
  uint64_t rows_quarantined = 0;
};

/// Produces row `row` for the writer below; returns a reference that stays
/// valid until the next call on the same worker (per-worker scratch is the
/// intended shape). Called exactly once per row, in row order within each
/// shard.
using ShardRowFn =
    std::function<const containers::SparseVector&(int worker, size_t row)>;

/// Writes a sharded sparse ARFF dataset of `num_rows` rows rooted at
/// `base_path`, pulling each row from `row_fn` *inside* the per-shard
/// write loop — rows are scored, formatted, and streamed out without the
/// full matrix ever existing. Byte-identical to WriteShardedArff over the
/// equivalent matrix (same shard split, CRCs, and manifest). `hint`
/// annotates the shard loop with the producer's memory traffic.
Status WriteShardedArffRows(SimDisk* disk, parallel::Executor* executor,
                            const std::string& base_path,
                            const std::string& relation_name,
                            const std::vector<std::string>& attributes,
                            size_t num_rows, int shards,
                            const ShardRowFn& row_fn,
                            const parallel::WorkHint& hint = {});

/// Writes `matrix` as a sharded sparse ARFF dataset rooted at `base_path`.
/// Shard writes run as one parallel loop on `executor` (one shard per
/// chunk). `shards` is clamped to [1, num_rows].
Status WriteShardedArff(SimDisk* disk, parallel::Executor* executor,
                        const std::string& base_path,
                        const std::string& relation_name,
                        const std::vector<std::string>& attributes,
                        const containers::SparseMatrix& matrix, int shards);

/// Reads a sharded dataset written by WriteShardedArff; shard reads and
/// parses run as one parallel loop on `executor`. Row order is preserved.
///
/// `policy` governs shards that stay unreadable after the disk's retry
/// budget (I/O errors, persistent checksum mismatches, parse failures):
/// kFailFast aborts the whole read (cancelling the remaining shard chunks
/// cooperatively); kRetryThenSkip records the shard in
/// `result.quarantine`, leaves its rows empty, and completes.
StatusOr<ArffShardedResult> ReadShardedArff(
    SimDisk* disk, parallel::Executor* executor, const std::string& base_path,
    FaultPolicy policy = FaultPolicy::kFailFast);

}  // namespace hpa::io

#endif  // HPA_IO_SHARDED_ARFF_H_
