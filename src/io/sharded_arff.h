#ifndef HPA_IO_SHARDED_ARFF_H_
#define HPA_IO_SHARDED_ARFF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "containers/sparse_matrix.h"
#include "io/sim_disk.h"
#include "parallel/executor.h"

/// \file
/// Sharded sparse-ARFF: HPA's answer to the paper's §3.2 open challenge
/// ("Parallelizing output is important as well. However, file formats are
/// often designed in such a way that parallel I/O becomes hard").
///
/// The dataset is split row-wise into N shard files that are written and
/// read *concurrently*; the attribute header lives once in a manifest
/// instead of being duplicated per shard:
///
///   <base>.manifest   — text: magic, relation, shard count + row counts,
///                       attribute list
///   <base>.0 ... <base>.N-1 — sparse data rows only ("{idx value,...}")
///
/// Whether this actually helps depends on the storage device: on the
/// single-channel local HDD of Figure 3 the shard writes serialize at the
/// device anyway, while on multi-channel storage the output phase finally
/// scales — exactly the device-dependence `bench/ablation_parallel_output`
/// demonstrates.

namespace hpa::io {

/// Parsed sharded dataset.
struct ArffShardedResult {
  std::string relation_name;
  std::vector<std::string> attributes;
  containers::SparseMatrix data;
};

/// Writes `matrix` as a sharded sparse ARFF dataset rooted at `base_path`.
/// Shard writes run as one parallel loop on `executor` (one shard per
/// chunk). `shards` is clamped to [1, num_rows].
Status WriteShardedArff(SimDisk* disk, parallel::Executor* executor,
                        const std::string& base_path,
                        const std::string& relation_name,
                        const std::vector<std::string>& attributes,
                        const containers::SparseMatrix& matrix, int shards);

/// Reads a sharded dataset written by WriteShardedArff; shard reads and
/// parses run as one parallel loop on `executor`. Row order is preserved.
StatusOr<ArffShardedResult> ReadShardedArff(SimDisk* disk,
                                            parallel::Executor* executor,
                                            const std::string& base_path);

}  // namespace hpa::io

#endif  // HPA_IO_SHARDED_ARFF_H_
