#ifndef HPA_IO_SIM_DISK_H_
#define HPA_IO_SIM_DISK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/retry.h"
#include "common/status.h"
#include "io/fault_injection.h"
#include "parallel/executor.h"

/// \file
/// Simulated storage device. All data is really written to / read from a
/// backing directory (so correctness is end-to-end testable), while the
/// *time* each operation would take on the modelled device — first-byte
/// latency plus bytes over bandwidth — is charged to the executor's
/// (virtual) clock. The device's `channels` parameter caps how many
/// requests can proceed concurrently, which is what makes a single-channel
/// "local hard disk" the Figure-3 bottleneck while a multi-channel corpus
/// store still rewards parallel input (§3.2).

namespace hpa::io {

/// Device performance characteristics.
struct DiskOptions {
  /// Sustained sequential throughput.
  double bandwidth_bytes_per_sec = 120.0e6;

  /// Fixed cost per request (seek + first byte).
  double latency_sec = 0.008;

  /// Concurrent request capacity (1 = strictly serial device).
  int channels = 1;

  /// HDD-class profile: the paper's "local hard disk" for intermediates.
  static DiskOptions LocalHdd() { return DiskOptions{}; }

  /// Multi-channel profile for the source corpus store. The per-request
  /// latency models the open+seek cost of reading many independent
  /// document files, which is what makes the paper's phase-1 input
  /// expensive serially but rewarding to parallelize (§3.2).
  static DiskOptions CorpusStore() {
    DiskOptions o;
    o.bandwidth_bytes_per_sec = 600.0e6;
    o.latency_sec = 0.0005;
    o.channels = 16;
    return o;
  }
};

class SimWriter;
class SimReader;

/// A simulated disk rooted at a real backing directory.
///
/// Thread-compatible like `Executor`: operations may be issued from inside
/// parallel-region bodies (the time is then attributed to the issuing
/// worker/chunk), matching how operators overlap I/O with compute.
class SimDisk {
 public:
  /// \param options device model
  /// \param root existing backing directory for file contents
  /// \param executor clock to charge; may be null (no time accounting)
  SimDisk(const DiskOptions& options, std::string root,
          parallel::Executor* executor);

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Re-points time charging at a different executor (each experiment run
  /// constructs its own executor but can reuse the disk + backing files).
  void set_executor(parallel::Executor* executor) { executor_ = executor; }
  parallel::Executor* executor() const { return executor_; }

  const DiskOptions& options() const { return options_; }
  const std::string& root() const { return root_; }

  /// Attaches a fault injector consulted before every read request (not
  /// owned; may be null = no faults). Injected latency is charged to the
  /// executor's clock like any other device time.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Retry policy applied to read requests that fail (injected or real
  /// transient errors). Defaults to NoRetry, which preserves the exact
  /// pre-fault-tolerance behavior. Backoff waits are charged to the
  /// executor's clock — recovery costs simulated time, not wall time.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Charges one backoff wait to the clock and counts the retry. Also used
  /// by readers (e.g. PackedCorpus) that re-read after a checksum mismatch.
  void NoteRetry(double backoff_sec);

  /// Lifetime count of retry attempts performed through this disk.
  uint64_t total_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  /// Writes a whole file; charges one request plus the byte cost.
  Status WriteFile(const std::string& rel_path, std::string_view contents);

  /// Reads a whole file; charges one request plus the byte cost.
  /// See ReadRange for the meaning of `attempt_base`.
  StatusOr<std::string> ReadFile(const std::string& rel_path,
                                 int attempt_base = 0);

  /// Reads `length` bytes at `offset`; charges one request plus byte cost.
  /// `attempt_base` offsets the attempt numbers seen by the fault injector:
  /// a caller that re-reads after detecting corruption passes its own retry
  /// count so the injected-fault decision can differ from the first read
  /// (decisions are pure functions of (request, attempt)).
  StatusOr<std::string> ReadRange(const std::string& rel_path,
                                  uint64_t offset, uint64_t length,
                                  int attempt_base = 0);

  /// Opens a buffered, append-only stream writer. One request latency is
  /// charged at open; bytes are charged as they are appended.
  StatusOr<std::unique_ptr<SimWriter>> OpenWriter(const std::string& rel_path);

  /// Opens a whole-file stream reader (contents loaded eagerly; latency +
  /// bytes charged at open, matching a sequential scan).
  StatusOr<std::unique_ptr<SimReader>> OpenReader(const std::string& rel_path);

  bool Exists(const std::string& rel_path) const;
  StatusOr<uint64_t> FileSize(const std::string& rel_path) const;
  Status Remove(const std::string& rel_path);

  /// Lifetime byte counters (for reports). Safe to read concurrently.
  uint64_t total_bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t total_bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

  /// Absolute backing path for `rel_path`.
  std::string AbsPath(const std::string& rel_path) const;

 private:
  friend class SimWriter;
  friend class SimReader;

  /// Charges `latency + bytes/bandwidth` to the executor, if any.
  void ChargeRequest(uint64_t bytes);
  /// Charges only the byte cost (for streaming appends after open).
  void ChargeBytes(uint64_t bytes);

  /// Shared read path: consults the fault injector per attempt, retries
  /// per `retry_policy_` (charging backoff to the clock), applies payload
  /// corruption / latency spikes to successful reads, and does the byte
  /// accounting.
  StatusOr<std::string> FaultAwareRead(
      std::string_view op, const std::string& rel_path, uint64_t offset,
      int attempt_base,
      const std::function<StatusOr<std::string>()>& read_fn);

  DiskOptions options_;
  std::string root_;
  parallel::Executor* executor_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_policy_ = RetryPolicy::NoRetry();
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> retries_{0};
};

/// Buffered append-only writer on a SimDisk file.
///
/// Bytes accumulate in memory and are flushed to the backing file in large
/// blocks; simulated time is charged per appended byte regardless of when
/// the real flush happens.
class SimWriter {
 public:
  ~SimWriter();

  SimWriter(const SimWriter&) = delete;
  SimWriter& operator=(const SimWriter&) = delete;

  /// Appends bytes to the file.
  Status Append(std::string_view data);

  /// Flushes buffered bytes to the backing file.
  Status Flush();

  /// Flushes and finalizes. Must be called before destruction for the
  /// Status to be observable; the destructor flushes best-effort.
  Status Close();

  /// Bytes appended so far.
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  friend class SimDisk;
  SimWriter(SimDisk* disk, std::string abs_path);

  SimDisk* disk_;
  std::string abs_path_;
  std::string buffer_;
  uint64_t bytes_written_ = 0;
  bool closed_ = false;
};

/// Whole-file reader with line iteration.
class SimReader {
 public:
  /// Entire file contents.
  const std::string& contents() const { return contents_; }

  /// Returns the next line (without trailing newline) or false at EOF.
  bool NextLine(std::string_view* line);

  /// Resets line iteration to the start.
  void Rewind() { pos_ = 0; }

 private:
  friend class SimDisk;
  SimReader(std::string contents) : contents_(std::move(contents)) {}

  std::string contents_;
  size_t pos_ = 0;
};

}  // namespace hpa::io

#endif  // HPA_IO_SIM_DISK_H_
