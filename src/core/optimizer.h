#ifndef HPA_CORE_OPTIMIZER_H_
#define HPA_CORE_OPTIMIZER_H_

#include <cstdint>

#include "core/cost_model.h"
#include "core/plan.h"
#include "core/workflow.h"

/// \file
/// The workflow optimizer: turns a workflow plus machine/workload
/// knowledge into an ExecutionPlan, applying the paper's four
/// optimizations as rules:
///
///  1. intra-node parallelism — plan for the machine's full worker count;
///  2. parallel input — implied: source reads happen inside parallel loops;
///  3. workflow fusion — edges default to in-memory (fused) boundaries;
///     materialization only where requested (spill/checkpoint) or at sinks;
///  4. data-structure selection — per-operator dictionary backend chosen by
///     the cost model *at the planned worker count* (the choice flips as
///     parallelism grows, §3.4).

namespace hpa::core {

/// Optimizer knobs.
struct OptimizerOptions {
  /// Target worker count (optimization 1). <= 0 means "keep plan default".
  int workers = 16;

  /// Force every intermediate edge to materialize (the paper's discrete
  /// baseline; useful for A/B runs and for checkpointing semantics).
  bool force_materialize_intermediates = false;

  /// Per-document table pre-size to plan with (the paper's 4K policy when
  /// hash backends are chosen; 0 = grow on demand).
  uint64_t per_doc_dict_presize = 0;

  /// Restrict the dictionary choice to the paper's two backends
  /// (std::map / std::unordered_map) instead of all five.
  bool paper_backends_only = false;

  /// Channel count of the scratch device the plan will run against.
  /// > 1 means materialized edges use sharded-ARFF output, whose
  /// scoring+formatting pass parallelizes — which lowers the overhead
  /// side of the checkpoint placement rule below.
  int scratch_channels = 1;

  /// Probability that a run dies mid-dag (environment knowledge, e.g.
  /// observed fault rates). > 0 enables the checkpoint placement rule: an
  /// interior edge is materialized — and therefore checkpointed by the
  /// executor — when the expected replay time saved on a restart
  /// (failure_probability x cost of the edge's ancestor operators,
  /// weighted by the edge's consumer count: a branching edge shared by
  /// K-means and a classifier trainer is replayed once per recovery path)
  /// exceeds the materialization + checkpoint-commit overhead
  /// (CostModel::CheckpointCommitSeconds). 0 leaves rule 3 untouched.
  double failure_probability = 0.0;

  /// Memory ceiling in bytes for data-resident state (0 = unlimited).
  /// > 0 enables the out-of-core rule: a TF/IDF edge whose in-memory
  /// sparse matrix (CostModel::EstimateMatrixBytes) would bust the
  /// ceiling is compared at its priced thrashing penalty against the
  /// streaming pipeline's re-scoring cost
  /// (CostModel::EstimateStreamingExtraSeconds); when the penalty wins,
  /// the edge flips to NodePlan::stream_corpus with
  /// CostModel::ChooseWindowBytes(mem_budget_bytes) windows. A streamed
  /// edge stays fused — there is no materialized artifact to checkpoint
  /// unless one is bought explicitly downstream.
  uint64_t mem_budget_bytes = 0;

  /// Per-window access latency of the corpus device, for pricing the
  /// streaming pipeline's window acquisitions (HDD-order seek by
  /// default).
  double corpus_latency_sec = 0.005;
};

/// Produces a plan for `workflow` using `cost_model` and `options`.
///
/// Sinks are always materialized (final outputs must land on storage);
/// interior edges are fused unless forced. Dictionary backends are chosen
/// per operator by the cost model at the planned worker count.
ExecutionPlan OptimizeWorkflow(const Workflow& workflow,
                               const CostModel& cost_model,
                               const OptimizerOptions& options);

}  // namespace hpa::core

#endif  // HPA_CORE_OPTIMIZER_H_
