#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace hpa::core {

std::string FormatFaultSummary(const QuarantineList& quarantine,
                               size_t total_items, uint64_t device_retries) {
  if (quarantine.empty()) {
    return StrFormat("faults: none (%zu item(s) clean, %llu retr%s)\n",
                     total_items,
                     static_cast<unsigned long long>(device_retries),
                     device_retries == 1 ? "y" : "ies");
  }
  std::string out =
      StrFormat("faults: %zu of %zu item(s) quarantined, %llu device retr%s\n",
                quarantine.size(), total_items,
                static_cast<unsigned long long>(device_retries),
                device_retries == 1 ? "y" : "ies");
  out += quarantine.Summary();
  return out;
}

std::string FormatTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  size_t cols = 0;
  for (const auto& row : rows) cols = std::max(cols, row.size());
  std::vector<size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < rows[r].size() ? rows[r][c] : "";
      if (c == 0) {
        out += cell;
        out.append(widths[c] - cell.size(), ' ');
      } else {
        out += "  ";
        out.append(widths[c] - cell.size(), ' ');
        out += cell;
      }
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < cols; ++c) total += widths[c] + (c ? 2 : 0);
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

std::string FormatPhaseBreakdown(const std::vector<BreakdownColumn>& columns,
                                 const std::vector<std::string>& phase_order) {
  // Collect the union of phase names: ordered ones first, then first-seen.
  std::vector<std::string> phases;
  auto add = [&](const std::string& name) {
    if (std::find(phases.begin(), phases.end(), name) == phases.end()) {
      phases.push_back(name);
    }
  };
  for (const std::string& name : phase_order) {
    for (const BreakdownColumn& col : columns) {
      if (col.phases.Seconds(name) > 0.0) {
        add(name);
        break;
      }
    }
  }
  for (const BreakdownColumn& col : columns) {
    for (const auto& phase : col.phases.phases()) add(phase.name);
  }

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"phase"};
  for (const BreakdownColumn& col : columns) header.push_back(col.label);
  rows.push_back(std::move(header));

  for (const std::string& name : phases) {
    std::vector<std::string> row = {name};
    for (const BreakdownColumn& col : columns) {
      row.push_back(StrFormat("%.3f", col.phases.Seconds(name)));
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> total = {"TOTAL"};
  for (const BreakdownColumn& col : columns) {
    total.push_back(StrFormat("%.3f", col.phases.TotalSeconds()));
  }
  rows.push_back(std::move(total));
  return FormatTable(rows);
}

std::string FormatSpeedupTable(const std::vector<SpeedupSeries>& series) {
  // Union of thread counts across series, sorted.
  std::vector<int> threads;
  for (const SpeedupSeries& s : series) {
    for (const SpeedupPoint& p : s.points) {
      if (std::find(threads.begin(), threads.end(), p.threads) ==
          threads.end()) {
        threads.push_back(p.threads);
      }
    }
  }
  std::sort(threads.begin(), threads.end());

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"threads"};
  for (const SpeedupSeries& s : series) {
    header.push_back("time(" + s.label + ")");
    header.push_back("speedup(" + s.label + ")");
  }
  rows.push_back(std::move(header));

  for (int t : threads) {
    std::vector<std::string> row = {std::to_string(t)};
    for (const SpeedupSeries& s : series) {
      const SpeedupPoint* point = nullptr;
      double base = 0.0;
      for (const SpeedupPoint& p : s.points) {
        if (p.threads == t) point = &p;
        if (p.threads == 1) base = p.seconds;
      }
      if (point == nullptr) {
        row.push_back("-");
        row.push_back("-");
      } else {
        row.push_back(StrFormat("%.3fs", point->seconds));
        row.push_back(base > 0.0
                          ? StrFormat("%.2fx", base / point->seconds)
                          : "-");
      }
    }
    rows.push_back(std::move(row));
  }
  return FormatTable(rows);
}

}  // namespace hpa::core
