#ifndef HPA_CORE_PLAN_IO_H_
#define HPA_CORE_PLAN_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/plan.h"
#include "core/workflow.h"

/// \file
/// Textual persistence for execution plans, so an optimizer decision can
/// be inspected, edited by hand, checked into a repo, and replayed —
/// "EXPLAIN" plus plan pinning for a workflow engine.
///
/// Format (line-oriented, stable):
///
///   hpa-plan v1
///   workers 16
///   node 0 source corpus
///   node 1 op=tfidf boundary=fused dict=map presize=4096
///   node 2 op=kmeans boundary=materialized dict=open-hash presize=0

namespace hpa::core {

/// Serializes `plan` against its `workflow` (node labels are included for
/// readability and validated on load).
std::string SerializePlan(const ExecutionPlan& plan,
                          const Workflow& workflow);

/// Parses a plan for `workflow`. Fails with InvalidArgument/Corruption if
/// the text is malformed, the node count or kinds do not match the
/// workflow, or a dictionary backend is unknown. Operator labels are
/// checked when present.
StatusOr<ExecutionPlan> ParsePlan(std::string_view text,
                                  const Workflow& workflow);

}  // namespace hpa::core

#endif  // HPA_CORE_PLAN_IO_H_
