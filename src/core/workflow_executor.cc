#include "core/workflow_executor.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "io/file_io.h"
#include "ops/exec_context.h"

namespace hpa::core {

std::string ExecutionPlan::ToString(const Workflow& workflow) const {
  std::string out = StrFormat("plan: workers=%d\n", workers);
  for (size_t i = 0; i < workflow.size(); ++i) {
    int id = static_cast<int>(i);
    if (workflow.IsSource(id)) {
      out += StrFormat("  node %d: source '%s'\n", id,
                       std::string(workflow.label(id)).c_str());
      continue;
    }
    const NodePlan& np = nodes[i];
    out += StrFormat(
        "  node %d: %s -> %s, dict=%s%s%s\n", id,
        std::string(workflow.label(id)).c_str(),
        std::string(BoundaryName(np.output_boundary)).c_str(),
        std::string(containers::DictBackendName(np.dict_backend)).c_str(),
        np.per_doc_dict_presize > 0
            ? StrFormat(" (presize %zu)", np.per_doc_dict_presize).c_str()
            : "",
        np.stream_corpus
            ? StrFormat(", stream (window %llu)",
                        static_cast<unsigned long long>(np.window_bytes))
                  .c_str()
            : "");
  }
  return out;
}

StatusOr<WorkflowRunResult> RunWorkflow(const Workflow& workflow,
                                        const ExecutionPlan& plan,
                                        const RunEnv& env) {
  if (env.executor == nullptr) {
    return Status::InvalidArgument("RunWorkflow requires an executor");
  }
  if (plan.nodes.size() != workflow.size()) {
    return Status::InvalidArgument(
        StrFormat("plan has %zu node entries for a workflow of %zu nodes",
                  plan.nodes.size(), workflow.size()));
  }

  const bool checkpointing = !env.checkpoint_dir.empty();
  if (checkpointing && env.scratch_disk == nullptr) {
    return Status::InvalidArgument(
        "checkpoint_dir set but RunEnv has no scratch disk");
  }

  WorkflowRunResult result;
  double start = env.executor->Now();

  uint64_t fingerprint = 0;
  std::vector<CheckpointLoadResult> ckpts(workflow.size());
  if (checkpointing) {
    fingerprint = PlanFingerprint(workflow, plan, env);
    HPA_RETURN_IF_ERROR(
        io::MakeDirs(env.scratch_disk->AbsPath(env.checkpoint_dir)));
    // Probe every node's checkpoint up front (validation reads are priced
    // on the scratch disk's clock). Rejection is never fatal: log why the
    // checkpoint cannot be used and fall back to re-executing the node.
    // Determinism makes the re-run reproduce the artifact any *later*
    // valid checkpoint depends on, so those remain usable.
    for (size_t i = 0; i < workflow.size(); ++i) {
      int id = static_cast<int>(i);
      if (workflow.IsSource(id)) continue;
      ckpts[i] = LoadNodeCheckpoint(env.scratch_disk, env.checkpoint_dir,
                                    id, fingerprint);
      if (!ckpts[i].valid && !ckpts[i].reject_reason.empty()) {
        HPA_LOG(kWarning, "checkpoint rejected, re-running %s: %s",
                std::string(workflow.label(id)).c_str(),
                ckpts[i].reject_reason.c_str());
        result.checkpoint_rejections.push_back(ckpts[i].reject_reason);
      }
    }
  }

  // Backward pass from the sinks: which edges must carry data this run?
  // A needed node with a valid checkpoint rehydrates from its artifact
  // and pulls in none of its inputs; one without must execute, making all
  // of its inputs needed. Everything else is skipped outright — resuming
  // a fully-checkpointed dag executes nothing.
  std::vector<bool> need_data(workflow.size(), false);
  for (int sink : workflow.SinkIds()) {
    need_data[static_cast<size_t>(sink)] = true;
  }
  for (size_t r = workflow.size(); r-- > 0;) {
    int id = static_cast<int>(r);
    if (!need_data[r] || workflow.IsSource(id) || ckpts[r].valid) continue;
    for (int input : workflow.node(id).inputs) {
      need_data[static_cast<size_t>(input)] = true;
    }
  }

  // Reference counts so intermediates are dropped after their last use —
  // counting only consumers that will actually execute.
  std::vector<int> remaining_uses(workflow.size(), 0);
  for (size_t i = 0; i < workflow.size(); ++i) {
    int id = static_cast<int>(i);
    if (!need_data[i] || workflow.IsSource(id) || ckpts[i].valid) continue;
    for (int input : workflow.node(id).inputs) {
      ++remaining_uses[static_cast<size_t>(input)];
    }
  }

  std::vector<Dataset> datasets(workflow.size());

  // The crash hook fires after the node's checkpoint (if any) commits, so
  // a crashed run leaves exactly the manifests a real mid-dag failure
  // would: every node up to and including the crash point.
  auto maybe_crash = [&](int id) -> Status {
    if (env.crash_after_node != id) return Status::OK();
    return Status::Internal(
        StrFormat("simulated crash after node %d (%s)", id,
                  std::string(workflow.label(id)).c_str()));
  };

  // Drop inputs whose last consumer has now run.
  auto release_inputs = [&](const Workflow::Node& node) {
    for (int input : node.inputs) {
      if (--remaining_uses[static_cast<size_t>(input)] == 0) {
        datasets[static_cast<size_t>(input)] = Dataset{};
      }
    }
  };

  for (size_t i = 0; i < workflow.size(); ++i) {
    int id = static_cast<int>(i);
    if (!need_data[i]) {
      // Every consumer of this edge resumes from its own checkpoint; the
      // node is skipped without touching data or devices. Its recorded
      // quarantine still counts — the aggregate list must match an
      // uninterrupted run no matter how much of the dag was skipped.
      if (ckpts[i].valid) {
        result.quarantine.MergeFrom(std::move(ckpts[i].manifest.quarantine));
      }
      HPA_RETURN_IF_ERROR(maybe_crash(id));
      continue;
    }
    if (workflow.IsSource(id)) {
      datasets[i] = workflow.source_dataset(id);
      HPA_RETURN_IF_ERROR(maybe_crash(id));
      continue;
    }
    const Workflow::Node& node = workflow.node(id);
    const NodePlan& np = plan.nodes[i];

    if (ckpts[i].valid) {
      auto rehydrated = RehydrateDataset(ckpts[i].manifest);
      if (!rehydrated.ok()) {
        // Unknown dataset kind in a validated manifest: hand-edited state
        // with a correct CRC. Refuse rather than guess.
        return rehydrated.status().WithContext(
            "node " + std::to_string(id) + " (" +
            std::string(workflow.label(id)) + ")");
      }
      datasets[i] = std::move(rehydrated).value();
      result.quarantine.MergeFrom(std::move(ckpts[i].manifest.quarantine));
      ++result.resumed_nodes;
      HPA_RETURN_IF_ERROR(maybe_crash(id));
      continue;
    }

    // Per-node quarantine sink: feeds both the aggregate result list and
    // this node's checkpoint manifest (so a resumed run still reports the
    // documents a skipped node quarantined).
    QuarantineList node_quarantine;

    ops::ExecContext ctx;
    ctx.executor = env.executor;
    ctx.corpus_disk = env.corpus_disk;
    ctx.scratch_disk = env.scratch_disk;
    ctx.dict_backend = np.dict_backend;
    ctx.per_doc_dict_presize = np.per_doc_dict_presize;
    ctx.tokenizer = env.tokenizer;
    ctx.stem_tokens = env.stem_tokens;
    ctx.no_prune = env.no_prune;
    ctx.stream_windows = np.stream_corpus;
    ctx.window_bytes = np.window_bytes;
    ctx.prefetch_windows = env.prefetch_windows;
    ctx.mem_budget_bytes = env.mem_budget_bytes;
    ctx.fault_policy = env.fault_policy;
    ctx.quarantine = &node_quarantine;
    ctx.crash_after_node = env.crash_after_node;
    ctx.phases = &result.phases;

    std::vector<const Dataset*> inputs;
    inputs.reserve(node.inputs.size());
    for (int input : node.inputs) {
      inputs.push_back(&datasets[static_cast<size_t>(input)]);
    }

    auto output = node.op->Run(ctx, inputs, np.output_boundary);
    if (!output.ok()) {
      return output.status().WithContext(
          "node " + std::to_string(id) + " (" +
          std::string(workflow.label(id)) + ")");
    }
    datasets[i] = std::move(output).value();
    ++result.replayed_nodes;

    if (checkpointing) {
      // Only file-reference outputs are checkpointable: a fused edge has
      // no artifact to validate or rehydrate from, so it is re-derived on
      // resume like any other in-memory state.
      std::string_view kind = DatasetKindName(datasets[i]);
      if (kind == "arff-ref" || kind == "csv-ref" || kind == "model-ref") {
        CheckpointManifest manifest;
        manifest.node_id = id;
        manifest.op_name = std::string(workflow.label(id));
        manifest.dataset_kind = std::string(kind);
        manifest.artifact_path = std::string(DatasetRefPath(datasets[i]));
        manifest.fingerprint = fingerprint;
        manifest.quarantine = node_quarantine;
        Status written = WriteNodeCheckpoint(
            env.scratch_disk, env.checkpoint_dir, std::move(manifest));
        if (!written.ok()) {
          return written.WithContext(
              StrFormat("checkpointing node %d (%s)", id,
                        std::string(workflow.label(id)).c_str()));
        }
      }
    }
    result.quarantine.MergeFrom(std::move(node_quarantine));

    release_inputs(node);
    HPA_RETURN_IF_ERROR(maybe_crash(id));
  }

  for (int sink : workflow.SinkIds()) {
    result.outputs.push_back(std::move(datasets[static_cast<size_t>(sink)]));
  }
  result.total_seconds = env.executor->Now() - start;
  return result;
}

}  // namespace hpa::core
