#include "core/workflow_executor.h"

#include <utility>

#include "common/string_util.h"
#include "ops/exec_context.h"

namespace hpa::core {

std::string ExecutionPlan::ToString(const Workflow& workflow) const {
  std::string out = StrFormat("plan: workers=%d\n", workers);
  for (size_t i = 0; i < workflow.size(); ++i) {
    int id = static_cast<int>(i);
    if (workflow.IsSource(id)) {
      out += StrFormat("  node %d: source '%s'\n", id,
                       std::string(workflow.label(id)).c_str());
      continue;
    }
    const NodePlan& np = nodes[i];
    out += StrFormat(
        "  node %d: %s -> %s, dict=%s%s\n", id,
        std::string(workflow.label(id)).c_str(),
        std::string(BoundaryName(np.output_boundary)).c_str(),
        std::string(containers::DictBackendName(np.dict_backend)).c_str(),
        np.per_doc_dict_presize > 0
            ? StrFormat(" (presize %zu)", np.per_doc_dict_presize).c_str()
            : "");
  }
  return out;
}

StatusOr<WorkflowRunResult> RunWorkflow(const Workflow& workflow,
                                        const ExecutionPlan& plan,
                                        const RunEnv& env) {
  if (env.executor == nullptr) {
    return Status::InvalidArgument("RunWorkflow requires an executor");
  }
  if (plan.nodes.size() != workflow.size()) {
    return Status::InvalidArgument(
        StrFormat("plan has %zu node entries for a workflow of %zu nodes",
                  plan.nodes.size(), workflow.size()));
  }

  WorkflowRunResult result;
  double start = env.executor->Now();

  // Reference counts so intermediates are dropped after their last use.
  std::vector<int> remaining_uses(workflow.size(), 0);
  for (size_t i = 0; i < workflow.size(); ++i) {
    for (int input : workflow.node(static_cast<int>(i)).inputs) {
      ++remaining_uses[static_cast<size_t>(input)];
    }
  }

  std::vector<Dataset> datasets(workflow.size());

  for (size_t i = 0; i < workflow.size(); ++i) {
    int id = static_cast<int>(i);
    if (workflow.IsSource(id)) {
      datasets[i] = workflow.source_dataset(id);
      continue;
    }
    const Workflow::Node& node = workflow.node(id);
    const NodePlan& np = plan.nodes[i];

    ops::ExecContext ctx;
    ctx.executor = env.executor;
    ctx.corpus_disk = env.corpus_disk;
    ctx.scratch_disk = env.scratch_disk;
    ctx.dict_backend = np.dict_backend;
    ctx.per_doc_dict_presize = np.per_doc_dict_presize;
    ctx.tokenizer = env.tokenizer;
    ctx.stem_tokens = env.stem_tokens;
    ctx.phases = &result.phases;

    std::vector<const Dataset*> inputs;
    inputs.reserve(node.inputs.size());
    for (int input : node.inputs) {
      inputs.push_back(&datasets[static_cast<size_t>(input)]);
    }

    auto output = node.op->Run(ctx, inputs, np.output_boundary);
    if (!output.ok()) {
      return output.status().WithContext(
          "node " + std::to_string(id) + " (" +
          std::string(workflow.label(id)) + ")");
    }
    datasets[i] = std::move(output).value();

    // Drop inputs whose last consumer has now run.
    for (int input : node.inputs) {
      if (--remaining_uses[static_cast<size_t>(input)] == 0) {
        datasets[static_cast<size_t>(input)] = Dataset{};
      }
    }
  }

  for (int sink : workflow.SinkIds()) {
    result.outputs.push_back(std::move(datasets[static_cast<size_t>(sink)]));
  }
  result.total_seconds = env.executor->Now() - start;
  return result;
}

}  // namespace hpa::core
