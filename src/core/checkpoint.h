#ifndef HPA_CORE_CHECKPOINT_H_
#define HPA_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/plan.h"
#include "core/workflow.h"
#include "io/sim_disk.h"

/// \file
/// Workflow checkpoint/restart at materialized edges.
///
/// The optimizer already decides which edges materialize to the scratch
/// disk (§3.3); those artifacts are free checkpoints — the same idea as
/// MapReduce re-execution from materialized map output and Spark's
/// lineage cut at persisted RDDs. After a materialized node completes,
/// the executor writes a small *manifest* next to the artifact recording
/// what was produced and how to trust it:
///
///   hpa-checkpoint v1
///   fingerprint <hex64>        — plan/corpus identity (see PlanFingerprint)
///   node <id>
///   op <operator name>
///   kind <dataset kind>        — "arff-ref" | "csv-ref"
///   artifact <scratch path>
///   bytes <artifact size>
///   crc32 <hex32>              — CRC-32 over the artifact bytes
///   quarantine <attempts> <code> <id>   — zero or more restored entries
///   end
///
/// Manifests are written via the atomic whole-file path (temp + rename),
/// so a crash mid-checkpoint leaves either no manifest or a complete one —
/// never a torn record. On restart, `LoadNodeCheckpoint` re-validates
/// everything (parse, fingerprint, artifact presence, CRC) and the
/// executor resumes after the last complete checkpoint, re-running only
/// the DAG suffix. A checkpoint that fails validation for any reason is
/// *rejected with a logged reason* and its node re-executes — stale or
/// corrupt state is never silently loaded.
///
/// Fused edges have no on-disk artifact and are therefore never
/// checkpointed; a crash inside a fused chain resumes from the nearest
/// upstream materialized edge (or the source).

namespace hpa::core {

struct RunEnv;  // workflow_executor.h

/// One node's checkpoint record (the parsed manifest).
struct CheckpointManifest {
  int node_id = -1;
  std::string op_name;        ///< producing operator (label for sources)
  std::string dataset_kind;   ///< DatasetKindName of the artifact ref
  std::string artifact_path;  ///< scratch-disk-relative artifact path
  uint64_t artifact_bytes = 0;
  uint32_t artifact_crc32 = 0;
  uint64_t fingerprint = 0;   ///< PlanFingerprint at write time

  /// Items the producing operator quarantined; restored on resume so the
  /// workflow-level quarantine list is identical whether or not the node
  /// was replayed.
  QuarantineList quarantine;
};

/// Stable identity of (workflow structure, source datasets, materialization
/// choices, text-processing knobs) — everything that determines the *bytes*
/// of a materialized artifact. Worker count and dictionary backend are
/// deliberately excluded: results are invariant to both, so a checkpoint
/// taken at 8 workers resumes correctly at 1 (and vice versa). A manifest
/// whose fingerprint differs was written by a different plan or corpus and
/// is rejected.
uint64_t PlanFingerprint(const Workflow& workflow, const ExecutionPlan& plan,
                         const RunEnv& env);

/// Scratch-disk-relative manifest path for `node_id` under `checkpoint_dir`.
std::string CheckpointManifestPath(const std::string& checkpoint_dir,
                                   int node_id);

/// Serializes `manifest` in the line-oriented v1 format.
std::string SerializeManifest(const CheckpointManifest& manifest);

/// Parses a v1 manifest. Fails with Corruption on truncated or malformed
/// text (including a missing `end` terminator, which is how a torn append
/// would present — though the atomic write path should make that
/// impossible).
StatusOr<CheckpointManifest> ParseManifest(std::string_view text);

/// Computes the CRC-32 of the artifact at `rel_path` by streaming it back
/// through `disk` (the read is priced on the disk's clock — validation is
/// part of the measured checkpoint cost).
StatusOr<uint32_t> ChecksumArtifact(io::SimDisk* disk,
                                    const std::string& rel_path);

/// Writes the manifest for a just-completed materialized node: checksums
/// the artifact, fills in `fingerprint`, and commits the manifest
/// atomically to `disk` under `checkpoint_dir`.
Status WriteNodeCheckpoint(io::SimDisk* disk,
                           const std::string& checkpoint_dir,
                           CheckpointManifest manifest);

/// Outcome of trying to restore one node from its checkpoint.
struct CheckpointLoadResult {
  /// Set iff the checkpoint validated end-to-end; the node can be skipped
  /// and its output edge rehydrated from `manifest.artifact_path`.
  bool valid = false;

  /// The validated manifest (meaningful only when valid).
  CheckpointManifest manifest;

  /// Why the checkpoint was rejected (empty when valid, or when there was
  /// simply no manifest on disk — a fresh run is not a rejection).
  std::string reject_reason;
};

/// Validates node `node_id`'s checkpoint under `checkpoint_dir` against
/// `expected_fingerprint`: manifest present and well-formed, fingerprint
/// match, artifact present with matching size and CRC-32. Never fails the
/// caller — every problem degrades to `valid == false` (plus a reason when
/// a manifest existed but could not be trusted).
CheckpointLoadResult LoadNodeCheckpoint(io::SimDisk* disk,
                                        const std::string& checkpoint_dir,
                                        int node_id,
                                        uint64_t expected_fingerprint);

/// Rehydrates the dataset reference a skipped node hands downstream.
/// Only file-reference kinds are checkpointable ("arff-ref", "csv-ref");
/// anything else is Corruption (a hand-edited manifest).
StatusOr<Dataset> RehydrateDataset(const CheckpointManifest& manifest);

}  // namespace hpa::core

#endif  // HPA_CORE_CHECKPOINT_H_
