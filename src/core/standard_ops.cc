#include "core/standard_ops.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "io/csv.h"
#include "io/packed_corpus.h"
#include "io/sharded_arff.h"
#include "ops/streaming.h"
#include "ops/tfidf.h"
#include "parallel/parallel_ops.h"

namespace hpa::core {

namespace {

Status WrongInput(std::string_view op, const Dataset& got,
                  std::string_view expected) {
  return Status::InvalidArgument(std::string(op) + ": expected " +
                                 std::string(expected) + " input, got " +
                                 std::string(DatasetKindName(got)));
}

}  // namespace

StatusOr<Dataset> TfidfOperator::Run(ops::ExecContext& ctx,
                                     const std::vector<const Dataset*>& inputs,
                                     Boundary output_boundary) {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("tfidf takes exactly one input");
  }
  const auto* corpus_ref = std::get_if<CorpusRef>(inputs[0]);
  if (corpus_ref == nullptr) {
    return WrongInput("tfidf", *inputs[0], "corpus-ref");
  }
  if (ctx.corpus_disk == nullptr) {
    return Status::FailedPrecondition("tfidf requires a corpus disk");
  }
  HPA_ASSIGN_OR_RETURN(
      auto reader,
      io::PackedCorpusReader::Open(ctx.corpus_disk, corpus_ref->path));

  if (output_boundary == Boundary::kMaterialized) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "materialized tfidf requires a scratch disk");
    }
    HPA_RETURN_IF_ERROR(ops::TfidfToArff(ctx, reader, kArffPath));
    return Dataset(ArffRef{kArffPath});
  }
  if (ctx.stream_windows) {
    // Semi-external plan: fit the model through bounded windows and hand
    // downstream consumers the model (O(vocabulary)) instead of the
    // matrix (O(corpus)). The edge carries no artifact — a resume
    // re-derives it, like any fused edge.
    ops::StreamingOptions sopts;
    sopts.window_bytes = ctx.window_bytes;
    sopts.prefetch = ctx.prefetch_windows;
    HPA_ASSIGN_OR_RETURN(auto model,
                         ops::StreamingTfidfFit(ctx, reader, {}, sopts));
    if (ctx.quarantine != nullptr && !model.quarantine.empty()) {
      QuarantineList copy = model.quarantine;
      ctx.quarantine->MergeFrom(std::move(copy));
    }
    return Dataset(std::move(model));
  }
  HPA_ASSIGN_OR_RETURN(auto result, ops::TfidfInMemory(ctx, reader));
  if (ctx.quarantine != nullptr && !result.quarantine.empty()) {
    QuarantineList copy = result.quarantine;
    ctx.quarantine->MergeFrom(std::move(copy));
  }
  return Dataset(std::move(result));
}

StatusOr<Dataset> KMeansOperator::Run(ops::ExecContext& ctx,
                                      const std::vector<const Dataset*>& inputs,
                                      Boundary output_boundary) {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("kmeans takes exactly one input");
  }

  // Streaming input: the upstream TF/IDF fitted a model instead of a
  // matrix; re-open the corpus it names and run the windowed K-means,
  // which re-scores rows on the fly (bit-identical to the in-memory
  // kernel). The model carries the window/prefetch configuration the
  // plan chose.
  if (const auto* model = std::get_if<ops::StreamingTfidfModel>(inputs[0])) {
    if (ctx.corpus_disk == nullptr) {
      return Status::FailedPrecondition(
          "streaming kmeans requires a corpus disk");
    }
    HPA_ASSIGN_OR_RETURN(
        auto reader,
        io::PackedCorpusReader::Open(ctx.corpus_disk, model->corpus_path));
    ops::StreamingOptions sopts;
    sopts.window_bytes = model->window_bytes;
    sopts.prefetch = model->prefetch;
    HPA_ASSIGN_OR_RETURN(
        auto result, ops::StreamingSparseKMeans(ctx, *model, reader, options_,
                                                sopts));
    if (output_boundary == Boundary::kMaterialized) {
      if (ctx.scratch_disk == nullptr) {
        return Status::FailedPrecondition(
            "materialized kmeans requires a scratch disk");
      }
      HPA_RETURN_IF_ERROR(ops::WriteAssignmentsCsv(ctx, model->doc_names,
                                                   result.assignment,
                                                   kCsvPath));
      return Dataset(CsvRef{kCsvPath});
    }
    Clustering clustering;
    clustering.kmeans = std::move(result);
    clustering.doc_names = model->doc_names;
    return Dataset(std::move(clustering));
  }

  // Accept any of the three materialized-era input shapes.
  const containers::SparseMatrix* matrix = nullptr;
  containers::SparseMatrix loaded;  // owns the materialized-input case
  std::vector<std::string> doc_names;

  if (const auto* tfidf = std::get_if<ops::TfidfResult>(inputs[0])) {
    matrix = &tfidf->matrix;
    doc_names = tfidf->doc_names;
  } else if (const auto* m = std::get_if<containers::SparseMatrix>(inputs[0])) {
    matrix = m;
  } else if (const auto* arff = std::get_if<ArffRef>(inputs[0])) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "ARFF input requires a scratch disk");
    }
    if (ctx.scratch_disk->Exists(arff->path + ".manifest")) {
      // Sharded dataset (parallel reader); a rehydrated checkpoint edge
      // lands here when the upstream writer sharded its output.
      io::ArffShardedResult sharded;
      Status read;
      ctx.TimePhase("kmeans-input", [&] {
        auto r = io::ReadShardedArff(ctx.scratch_disk, ctx.executor,
                                     arff->path, ctx.fault_policy);
        if (r.ok()) {
          sharded = std::move(r).value();
        } else {
          read = r.status();
        }
      });
      HPA_RETURN_IF_ERROR(read);
      if (ctx.quarantine != nullptr) {
        ctx.quarantine->MergeFrom(std::move(sharded.quarantine));
      }
      loaded = std::move(sharded.data);
    } else {
      HPA_ASSIGN_OR_RETURN(loaded, ops::ReadTfidfArff(ctx, arff->path));
    }
    matrix = &loaded;
  } else {
    return WrongInput("kmeans", *inputs[0],
                      "tfidf/sparse-matrix/arff-ref/streaming-tfidf");
  }

  HPA_ASSIGN_OR_RETURN(auto result, ops::SparseKMeans(ctx, *matrix, options_));

  if (output_boundary == Boundary::kMaterialized) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "materialized kmeans requires a scratch disk");
    }
    HPA_RETURN_IF_ERROR(
        ops::WriteAssignmentsCsv(ctx, doc_names, result.assignment,
                                 kCsvPath));
    return Dataset(CsvRef{kCsvPath});
  }
  Clustering clustering;
  clustering.kmeans = std::move(result);
  clustering.doc_names = std::move(doc_names);
  return Dataset(std::move(clustering));
}

StatusOr<Dataset> TopTermsOperator::Run(
    ops::ExecContext& ctx, const std::vector<const Dataset*>& inputs,
    Boundary output_boundary) {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("top-terms takes exactly one input");
  }
  const auto* tfidf = std::get_if<ops::TfidfResult>(inputs[0]);
  if (tfidf == nullptr) {
    return WrongInput("top-terms", *inputs[0], "tfidf");
  }

  TermRanking ranking;
  ctx.TimePhase("top-terms", [&] {
    // Per-worker dense score totals over the vocabulary, merged serially.
    parallel::WorkerLocal<std::vector<double>> partials(
        *ctx.executor,
        [&] { return std::vector<double>(tfidf->matrix.num_cols, 0.0); });
    parallel::WorkHint hint;
    hint.label = "top-terms";
    hint.bytes_touched = tfidf->matrix.ApproxMemoryBytes();
    ctx.executor->ParallelFor(
        0, tfidf->matrix.num_rows(), 0, hint,
        [&](int worker, size_t b, size_t e) {
          std::vector<double>& totals = partials.Get(worker);
          for (size_t i = b; i < e; ++i) {
            const auto& row = tfidf->matrix.rows[i];
            for (size_t t = 0; t < row.nnz(); ++t) {
              totals[row.id_at(t)] += row.value_at(t);
            }
          }
        });

    ctx.executor->RunSerial(parallel::WorkHint{0, "top-terms-merge"}, [&] {
      std::vector<double> totals(tfidf->matrix.num_cols, 0.0);
      partials.ForEach([&](std::vector<double>& p) {
        for (size_t t = 0; t < totals.size(); ++t) totals[t] += p[t];
      });
      std::vector<std::pair<double, uint32_t>> order;
      order.reserve(totals.size());
      for (uint32_t t = 0; t < totals.size(); ++t) {
        if (totals[t] > 0) order.push_back({totals[t], t});
      }
      size_t keep = std::min(top_n_, order.size());
      std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      order.resize(keep);
      for (const auto& [score, id] : order) {
        ranking.terms.push_back({tfidf->terms[id], score});
      }
    });
  });

  if (output_boundary == Boundary::kMaterialized) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "materialized top-terms requires a scratch disk");
    }
    Status status;
    ctx.TimePhase("output", [&] {
      ctx.executor->RunSerial(parallel::WorkHint{0, "output"}, [&] {
        std::string csv = "term,total_score\n";
        for (const auto& [term, score] : ranking.terms) {
          csv += io::CsvEscape(term);
          csv += ',';
          AppendDouble(csv, score);
          csv += '\n';
        }
        status = ctx.scratch_disk->WriteFile(kCsvPath, csv);
      });
    });
    HPA_RETURN_IF_ERROR(status);
    return Dataset(CsvRef{kCsvPath});
  }
  return Dataset(std::move(ranking));
}

}  // namespace hpa::core
