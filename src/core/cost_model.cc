#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace hpa::core {

DictCostParams DictCostParams::Defaults(containers::DictBackend backend,
                                        uint64_t per_doc_presize) {
  using containers::DictBackend;
  DictCostParams p;
  switch (backend) {
    case DictBackend::kStdMap:
    case DictBackend::kRbTree:
      // Red-black tree: pointer-chasing inserts/lookups, O(log n), but
      // compact nodes and no resize storms.
      p.insert_ns = 260.0;
      p.lookup_ns = 230.0;
      p.bytes_per_entry = 80.0;
      p.fixed_table_bytes = 64.0;
      p.sorted_iteration = true;
      break;
    case DictBackend::kStdUnorderedMap:
    case DictBackend::kChainedHash:
      // Chained hash: O(1) lookups, but inserts pay rehash amortization and
      // the bucket arrays (especially pre-sized ones) bloat memory — the
      // paper's u-map observations.
      p.insert_ns = 280.0;
      p.lookup_ns = 90.0;
      p.bytes_per_entry = 56.0;
      p.fixed_table_bytes =
          128.0 + static_cast<double>(per_doc_presize) * 8.0;
      p.sorted_iteration = false;
      break;
    case DictBackend::kOpenHash:
      // Flat open addressing: cheap probes, inline slots; slot array is
      // ~2x entries at max load.
      p.insert_ns = 120.0;
      p.lookup_ns = 60.0;
      p.bytes_per_entry = 96.0;  // inline slots incl. empty headroom
      // Reserve(n) doubles to keep load <= 7/8, at ~48 B per inline slot.
      p.fixed_table_bytes =
          64.0 + static_cast<double>(per_doc_presize) * 96.0;
      p.sorted_iteration = false;
      break;
  }
  return p;
}

PhaseCostEstimate CostModel::Estimate(containers::DictBackend backend,
                                      int workers, uint64_t per_doc_presize,
                                      int output_channels) const {
  if (workers < 1) workers = 1;
  const DictCostParams p = DictCostParams::Defaults(backend, per_doc_presize);
  const double tokens = static_cast<double>(stats_.total_tokens);
  const double docs = static_cast<double>(stats_.documents);
  const double vocab = static_cast<double>(stats_.distinct_words);
  const double doc_entries = docs * stats_.avg_distinct_per_doc;
  const double w = static_cast<double>(workers);

  PhaseCostEstimate e;

  // Dictionary footprint: per-doc tables + the global table.
  e.dict_bytes = docs * p.fixed_table_bytes +
                 (doc_entries + vocab) * p.bytes_per_entry;

  // Bandwidth available to this worker count (same law as the executor).
  double bw_share =
      std::min(1.0, w * machine_.per_worker_bandwidth_fraction);
  double bw = machine_.mem_bandwidth_bytes_per_sec * bw_share;

  // input+wc: every token is one insert; per-doc df ticks are inserts into
  // the worker df table (~doc_entries of them); each document also pays
  // creation (allocation + zeroing) of its pre-sized table. Parallel over
  // documents, subject to the roofline on the tables being built.
  {
    double table_setup_seconds =
        docs * p.fixed_table_bytes * 0.3e-9;  // ~3 GB/s alloc+memset
    double cpu_seconds =
        (tokens * p.insert_ns + doc_entries * p.insert_ns) * 1e-9 +
        table_setup_seconds;
    double bandwidth_seconds = e.dict_bytes / bw;
    e.input_wc_seconds = std::max(cpu_seconds / w, bandwidth_seconds);
  }

  // transform: term-id assignment (serial; free sort for ordered backends)
  // plus one global lookup per per-doc entry, parallel over documents but
  // re-walking every table (roofline over the full dictionary footprint).
  {
    double sort_seconds =
        p.sorted_iteration ? vocab * 30.0e-9
                           : vocab * std::log2(std::max(2.0, vocab)) * 15.0e-9;
    double cpu_seconds = doc_entries * (p.lookup_ns + 60.0) * 1e-9;
    double bandwidth_seconds = e.dict_bytes / bw;
    e.transform_seconds =
        sort_seconds + std::max(cpu_seconds / w, bandwidth_seconds);
  }

  // discrete output: the same scoring work plus formatting (~90ns/score)
  // — disk time comes on top from the disk model. Strictly serial on a
  // single-channel device (the ARFF single-file constraint); with a
  // multi-channel scratch device the operator writes sharded ARFF, so the
  // scoring+formatting pass parallelizes like the transform, under the
  // same roofline.
  {
    double sort_seconds =
        p.sorted_iteration ? vocab * 30.0e-9
                           : vocab * std::log2(std::max(2.0, vocab)) * 15.0e-9;
    double cpu_seconds = doc_entries * (p.lookup_ns + 60.0 + 90.0) * 1e-9;
    if (output_channels > 1) {
      double bandwidth_seconds = e.dict_bytes / bw;
      e.output_seconds =
          sort_seconds + std::max(cpu_seconds / w, bandwidth_seconds);
    } else {
      e.output_seconds = sort_seconds + cpu_seconds;
    }
  }

  return e;
}

double CostModel::PrunedExactFraction(int iteration) {
  if (iteration <= 0) return 1.0;
  // Geometric decay toward a floor: a few percent of documents sit near a
  // cluster boundary and keep failing the bound test no matter how small
  // the drift gets.
  constexpr double kDecay = 0.5;
  constexpr double kFloor = 0.05;
  double f = std::pow(kDecay, static_cast<double>(iteration));
  return f < kFloor ? kFloor : f;
}

double CostModel::EstimateKMeansSeconds(int k, int iterations, int workers,
                                        bool prune) const {
  if (workers < 1) workers = 1;
  if (k < 1) k = 1;
  if (iterations < 0) iterations = 0;
  const double docs = static_cast<double>(stats_.documents);
  const double nnz = stats_.avg_distinct_per_doc;
  const double vocab = static_cast<double>(stats_.distinct_words);
  // Sparse kernel: one merge-join multiply-add per stored nonzero.
  constexpr double kKernelNsPerNnz = 4.0;
  // Serial merge/finalize: a handful of double ops per (cluster, term).
  constexpr double kMergeNsPerCell = 6.0;
  double seconds = 0.0;
  for (int t = 0; t < iterations; ++t) {
    double kernels_per_doc = static_cast<double>(k);
    if (prune) {
      double f = PrunedExactFraction(t);
      kernels_per_doc = f * static_cast<double>(k) + (1.0 - f) * 1.0;
    }
    seconds += docs * kernels_per_doc * nnz * kKernelNsPerNnz * 1e-9 /
               static_cast<double>(workers);
    seconds += static_cast<double>(k) * vocab * kMergeNsPerCell * 1e-9;
  }
  return seconds;
}

double CostModel::EstimateNbTrainSeconds(int num_classes, int workers) const {
  if (workers < 1) workers = 1;
  if (num_classes < 1) num_classes = 1;
  const double doc_entries =
      static_cast<double>(stats_.documents) * stats_.avg_distinct_per_doc;
  const double vocab = static_cast<double>(stats_.distinct_words);
  // Quantize + int64 add per stored nonzero; cheaper than the K-means
  // kernel (no merge-join against a second vector).
  constexpr double kAccumNsPerNnz = 3.0;
  // Serial tree-merge fold plus the log()-heavy finalize, per
  // (class, term) cell.
  constexpr double kMergeNsPerCell = 6.0;
  constexpr double kFinalizeNsPerCell = 12.0;
  return doc_entries * kAccumNsPerNnz * 1e-9 / static_cast<double>(workers) +
         static_cast<double>(num_classes) * vocab *
             (kMergeNsPerCell + kFinalizeNsPerCell) * 1e-9;
}

double CostModel::EstimateKnnPredictSeconds(double train_fraction,
                                            int workers) const {
  if (workers < 1) workers = 1;
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  const double docs = static_cast<double>(stats_.documents);
  const double nnz = stats_.avg_distinct_per_doc;
  // Same sparse merge-join kernel K-means assignment uses, but the "k" is
  // the training-row count: quadratic in documents, embarrassingly
  // parallel over queries, with no serial merge term at all — the exact
  // opposite cost shape of NB training.
  constexpr double kKernelNsPerNnz = 4.0;
  return docs * (docs * train_fraction) * nnz * kKernelNsPerNnz * 1e-9 /
         static_cast<double>(workers);
}

uint64_t CostModel::EstimateArtifactBytes() const {
  // Sparse ARFF: one "{id value," cell (~14 bytes) per stored score plus
  // one "@attribute <word> numeric" header line (~24 bytes) per term.
  const double doc_entries =
      static_cast<double>(stats_.documents) * stats_.avg_distinct_per_doc;
  return static_cast<uint64_t>(doc_entries * 14.0 +
                               static_cast<double>(stats_.distinct_words) *
                                   24.0);
}

uint64_t CostModel::EstimateMatrixBytes() const {
  // SparseVector stores 8-byte (id, value) pairs; each row adds vector
  // headers + allocator slack (~48 bytes, the measured per-row constant).
  const double doc_entries =
      static_cast<double>(stats_.documents) * stats_.avg_distinct_per_doc;
  return static_cast<uint64_t>(doc_entries * 8.0 +
                               static_cast<double>(stats_.documents) * 48.0);
}

double CostModel::MemoryCeilingPenaltySeconds(uint64_t resident_bytes,
                                              uint64_t budget_bytes) {
  if (budget_bytes == 0 || resident_bytes <= budget_bytes) return 0.0;
  // Every overflowing byte pages out and back in over the swap device
  // once per sweep; sweeps fault pages in access order, not layout order,
  // so the effective throughput (~25 MB/s) sits well below the device's
  // sequential rate. 2 transfers per byte, doubled again for the dirty
  // write-back of the evicted victim pages. Linear, so the optimizer's
  // comparison stays monotone in the overflow.
  constexpr double kSwapBytesPerSec = 25.0e6;
  double overflow = static_cast<double>(resident_bytes - budget_bytes);
  return overflow * 4.0 / kSwapBytesPerSec;
}

double CostModel::EstimateStreamingExtraSeconds(
    containers::DictBackend backend, int workers, uint64_t per_doc_presize,
    int kmeans_iterations, uint64_t window_bytes,
    double device_latency_sec) const {
  if (kmeans_iterations < 1) kmeans_iterations = 1;
  PhaseCostEstimate est = Estimate(backend, workers, per_doc_presize);
  // Per K-means iteration the streaming pass re-tokenizes and re-scores
  // the whole corpus — roughly one fused TF/IDF pass each time the
  // in-memory plan would just re-read resident rows.
  double rescore = static_cast<double>(kmeans_iterations) * est.TotalFused();
  // Each window acquisition pays the device latency once per pass (the
  // bandwidth term overlaps with compute under prefetch; latency does not).
  double corpus_bytes = static_cast<double>(stats_.total_tokens) * 6.0;
  double windows = window_bytes == 0
                       ? 1.0
                       : std::max(1.0, corpus_bytes /
                                           static_cast<double>(window_bytes));
  double latency = windows * device_latency_sec *
                   static_cast<double>(1 + kmeans_iterations);
  return rescore + latency;
}

uint64_t CostModel::ChooseWindowBytes(uint64_t budget_bytes) {
  if (budget_bytes == 0) return 0;
  constexpr uint64_t kMinWindowBytes = 64ull * 1024;
  uint64_t half = budget_bytes / 2;
  return half < kMinWindowBytes ? kMinWindowBytes : half;
}

double CostModel::CheckpointCommitSeconds(uint64_t bytes) const {
  // The commit reads the artifact back for the CRC-32 and writes a
  // manifest of a few hundred bytes; both land on the single-channel
  // scratch HDD (~100 MB/s sequential, ~5 ms of seeks per commit).
  constexpr double kScratchBytesPerSec = 100.0e6;
  constexpr double kSeekSeconds = 0.005;
  return static_cast<double>(bytes) / kScratchBytesPerSec + kSeekSeconds;
}

containers::DictBackend CostModel::BestBackend(
    int workers, uint64_t per_doc_presize) const {
  containers::DictBackend best = containers::DictBackend::kStdMap;
  double best_cost = 0.0;
  bool first = true;
  for (containers::DictBackend b : containers::kAllDictBackends) {
    double cost = Estimate(b, workers, per_doc_presize).TotalFused();
    if (first || cost < best_cost) {
      best = b;
      best_cost = cost;
      first = false;
    }
  }
  return best;
}

}  // namespace hpa::core
