#ifndef HPA_CORE_DATASET_H_
#define HPA_CORE_DATASET_H_

#include <string>
#include <variant>
#include <vector>

#include "containers/sparse_matrix.h"
#include "ops/kmeans.h"
#include "ops/knn.h"
#include "ops/naive_bayes.h"
#include "ops/streaming.h"
#include "ops/tfidf.h"

/// \file
/// The typed datasets that flow along workflow edges. An edge either
/// carries its dataset in memory (fused) or as a file reference on the
/// scratch disk (materialized) — the distinction at the heart of §3.3.

namespace hpa::core {

/// Reference to a packed corpus file on the corpus store.
struct CorpusRef {
  std::string path;
};

/// Reference to a sparse ARFF file on the scratch disk (a materialized
/// TF/IDF intermediate).
struct ArffRef {
  std::string path;
};

/// Reference to a CSV file on the scratch disk (materialized final output).
struct CsvRef {
  std::string path;
};

/// In-memory clustering output with document names attached.
struct Clustering {
  ops::KMeansResult kmeans;
  std::vector<std::string> doc_names;
};

/// Terms ranked by aggregate weight (TopTermsOperator output).
struct TermRanking {
  /// (term, total score) pairs, highest first.
  std::vector<std::pair<std::string, double>> terms;
};

/// Reference to a serialized classifier model on the scratch disk (a
/// materialized trainer output). The model kind is self-describing — the
/// artifact's header line says whether it is "hpa-nb-model v1" or
/// "hpa-knn-model v1" — so one reference type covers the family.
struct ModelRef {
  std::string path;
};

/// In-memory classifier predictions with document names attached
/// (ClassifierPredictOperator output). `predicted[i]` is the class id of
/// row i under `class_labels`; `doc_names` may be empty when the feature
/// input carried no names (ARFF), in which case row order is the identity.
struct Predictions {
  std::vector<std::string> doc_names;
  std::vector<uint32_t> predicted;
  /// Class label strings, index = class id (from the model).
  std::vector<std::string> class_labels;

  const std::string& PredictedLabel(size_t i) const {
    return class_labels[predicted[i]];
  }
};

/// Classification quality summary (EvaluateOperator output). Rows are
/// matched to ground-truth labels by row order (row i of the feature
/// matrix is document i of the corpus — quarantined documents keep empty
/// rows, so order is always preserved).
struct Evaluation {
  uint64_t documents = 0;       ///< rows scored against a non-empty label
  uint64_t correct = 0;         ///< predicted label == true label
  uint64_t unlabeled = 0;       ///< rows with no ground-truth label
  double accuracy = 0.0;        ///< correct / documents (0 when empty)
};

/// Any dataset a workflow edge can carry. `monostate` = not produced yet.
/// New kinds are appended — variant indices are load-bearing (plan dumps,
/// DatasetKindName) and must stay stable across releases.
using Dataset =
    std::variant<std::monostate, CorpusRef, ops::TfidfResult,
                 containers::SparseMatrix, ArffRef, Clustering, CsvRef,
                 TermRanking, ops::NaiveBayesModel, ops::KnnModel, ModelRef,
                 Predictions, Evaluation, ops::StreamingTfidfModel>;

/// Human-readable dataset kind ("corpus-ref", "tfidf", ...), for errors
/// and plan dumps.
std::string_view DatasetKindName(const Dataset& dataset);

/// On-disk path of a file-reference dataset (CorpusRef/ArffRef/CsvRef);
/// empty for in-memory kinds. Used by plan fingerprints and checkpoints.
std::string_view DatasetRefPath(const Dataset& dataset);

}  // namespace hpa::core

#endif  // HPA_CORE_DATASET_H_
