#ifndef HPA_CORE_DATASET_H_
#define HPA_CORE_DATASET_H_

#include <string>
#include <variant>
#include <vector>

#include "containers/sparse_matrix.h"
#include "ops/kmeans.h"
#include "ops/tfidf.h"

/// \file
/// The typed datasets that flow along workflow edges. An edge either
/// carries its dataset in memory (fused) or as a file reference on the
/// scratch disk (materialized) — the distinction at the heart of §3.3.

namespace hpa::core {

/// Reference to a packed corpus file on the corpus store.
struct CorpusRef {
  std::string path;
};

/// Reference to a sparse ARFF file on the scratch disk (a materialized
/// TF/IDF intermediate).
struct ArffRef {
  std::string path;
};

/// Reference to a CSV file on the scratch disk (materialized final output).
struct CsvRef {
  std::string path;
};

/// In-memory clustering output with document names attached.
struct Clustering {
  ops::KMeansResult kmeans;
  std::vector<std::string> doc_names;
};

/// Terms ranked by aggregate weight (TopTermsOperator output).
struct TermRanking {
  /// (term, total score) pairs, highest first.
  std::vector<std::pair<std::string, double>> terms;
};

/// Any dataset a workflow edge can carry. `monostate` = not produced yet.
using Dataset =
    std::variant<std::monostate, CorpusRef, ops::TfidfResult,
                 containers::SparseMatrix, ArffRef, Clustering, CsvRef,
                 TermRanking>;

/// Human-readable dataset kind ("corpus-ref", "tfidf", ...), for errors
/// and plan dumps.
std::string_view DatasetKindName(const Dataset& dataset);

/// On-disk path of a file-reference dataset (CorpusRef/ArffRef/CsvRef);
/// empty for in-memory kinds. Used by plan fingerprints and checkpoints.
std::string_view DatasetRefPath(const Dataset& dataset);

}  // namespace hpa::core

#endif  // HPA_CORE_DATASET_H_
