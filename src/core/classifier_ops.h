#ifndef HPA_CORE_CLASSIFIER_OPS_H_
#define HPA_CORE_CLASSIFIER_OPS_H_

#include <string>

#include "core/operator.h"
#include "ops/knn.h"
#include "ops/naive_bayes.h"

/// \file
/// The supervised-classification operator family: Naive Bayes and k-NN
/// trainers, a kind-dispatching predictor, and an accuracy evaluator.
/// Together with TfidfOperator they form the train → predict → evaluate
/// workflow the optimizer plans like any other: a shared TF/IDF edge can
/// feed K-means *and* a classifier trainer, producing a branching plan
/// whose materialization decision the checkpoint placement rule prices by
/// consumer count.
///
/// All four operators follow the KMeansOperator conventions: feature
/// inputs may arrive fused (TfidfResult / SparseMatrix) or materialized
/// (ArffRef — sharded or single-file); ground-truth labels ride the packed
/// corpus (v3 label column) referenced by a CorpusRef input, read from the
/// index without touching document bodies; quarantined documents keep
/// empty feature rows upstream and are skipped by the trainers, so
/// fault-policy runs train on exactly the surviving documents.

namespace hpa::core {

/// Trains multinomial Naive Bayes (inputs: {features, CorpusRef}).
///
///  * fused output: in-memory NaiveBayesModel — phase "nb-train";
///  * materialized output: also serializes the model ("hpa-nb-model v1")
///    to the scratch disk — phase "output" — and returns a ModelRef.
class NaiveBayesTrainOperator : public Operator {
 public:
  explicit NaiveBayesTrainOperator(ops::NaiveBayesOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "nb-train"; }
  StatusOr<Dataset> Run(ops::ExecContext& ctx,
                        const std::vector<const Dataset*>& inputs,
                        Boundary output_boundary) override;

  const ops::NaiveBayesOptions& options() const { return options_; }

  static constexpr const char* kModelPath = "nb_model.txt";

 private:
  ops::NaiveBayesOptions options_;
};

/// Freezes a k-NN model (inputs: {features, CorpusRef}).
///
///  * fused output: in-memory KnnModel — phase "knn-train";
///  * materialized output: also serializes the model ("hpa-knn-model v1")
///    to the scratch disk — phase "output" — and returns a ModelRef.
class KnnTrainOperator : public Operator {
 public:
  explicit KnnTrainOperator(ops::KnnOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "knn-train"; }
  StatusOr<Dataset> Run(ops::ExecContext& ctx,
                        const std::vector<const Dataset*>& inputs,
                        Boundary output_boundary) override;

  const ops::KnnOptions& options() const { return options_; }

  static constexpr const char* kModelPath = "knn_model.txt";

 private:
  ops::KnnOptions options_;
};

/// Scores feature rows with a trained classifier (inputs: {model,
/// features}). The model input may be an in-memory NaiveBayesModel /
/// KnnModel or a ModelRef, whose artifact header line selects the kind —
/// one operator serves the whole family, so a resumed run rehydrates the
/// model checkpoint without knowing what the trainer was.
///
///  * fused output: in-memory Predictions — phase "nb-predict" or
///    "knn-predict" (plus "classify-input" when the model or features
///    arrive materialized);
///  * materialized output: also writes "document,predicted_label" CSV —
///    phase "output" — and returns a CsvRef.
class ClassifierPredictOperator : public Operator {
 public:
  std::string_view name() const override { return "classify"; }
  StatusOr<Dataset> Run(ops::ExecContext& ctx,
                        const std::vector<const Dataset*>& inputs,
                        Boundary output_boundary) override;

  static constexpr const char* kCsvPath = "predictions.csv";
};

/// Scores predictions against corpus ground truth (inputs: {Predictions
/// or CsvRef, CorpusRef}). Rows match documents by position — row i is
/// document i, the invariant every feature pipeline preserves (quarantined
/// documents keep empty rows). Documents without a ground-truth label are
/// counted as `unlabeled`, not wrong.
///
///  * fused output: in-memory Evaluation — phase "evaluate";
///  * materialized output: also writes "metric,value" CSV — phase
///    "output" — and returns a CsvRef.
class EvaluateOperator : public Operator {
 public:
  std::string_view name() const override { return "evaluate"; }
  StatusOr<Dataset> Run(ops::ExecContext& ctx,
                        const std::vector<const Dataset*>& inputs,
                        Boundary output_boundary) override;

  static constexpr const char* kCsvPath = "evaluation.csv";
};

}  // namespace hpa::core

#endif  // HPA_CORE_CLASSIFIER_OPS_H_
