#ifndef HPA_CORE_REPORT_H_
#define HPA_CORE_REPORT_H_

#include <string>
#include <vector>

#include "common/retry.h"
#include "common/timer.h"

/// \file
/// Plain-text report formatting for the benchmark harnesses: the stacked
/// phase-breakdown tables of Figures 3/4 and the speedup series of
/// Figures 1/2, printed as aligned text tables on stdout.

namespace hpa::core {

/// A column of a phase-breakdown table: one configuration's PhaseTimer.
struct BreakdownColumn {
  std::string label;
  PhaseTimer phases;
};

/// Renders a table with one row per phase (union of all columns' phases,
/// in the order of `phase_order` first, then first-seen) and a TOTAL row.
/// Values are seconds with 3 decimals.
std::string FormatPhaseBreakdown(const std::vector<BreakdownColumn>& columns,
                                 const std::vector<std::string>& phase_order);

/// One point of a speedup curve.
struct SpeedupPoint {
  int threads = 0;
  double seconds = 0.0;
};

/// A labelled speedup curve (e.g. one corpus).
struct SpeedupSeries {
  std::string label;
  std::vector<SpeedupPoint> points;
};

/// Renders "threads | time(label) speedup(label) ..." rows; speedups are
/// self-relative to each series' 1-thread time (as in Figures 1 and 2).
std::string FormatSpeedupTable(const std::vector<SpeedupSeries>& series);

/// Simple generic table: first row = header, remaining rows = data, all
/// columns right-aligned except the first.
std::string FormatTable(const std::vector<std::vector<std::string>>& rows);

/// Renders the fault-tolerance outcome of a run: device retries performed
/// and quarantined items out of `total_items` (with a capped per-item
/// listing). Returns "faults: none (N items clean, 0 retries)"-style text
/// when nothing went wrong, so reports always state the fault posture.
std::string FormatFaultSummary(const QuarantineList& quarantine,
                               size_t total_items, uint64_t device_retries);

}  // namespace hpa::core

#endif  // HPA_CORE_REPORT_H_
