#ifndef HPA_CORE_STANDARD_OPS_H_
#define HPA_CORE_STANDARD_OPS_H_

#include <memory>
#include <string>

#include "core/operator.h"
#include "ops/kmeans.h"

/// \file
/// The two analytics operators the paper studies, wrapped as workflow
/// operators, plus a pass-through normalization transform.

namespace hpa::core {

/// TF/IDF over a packed corpus (input: CorpusRef).
///
///  * fused output: in-memory TfidfResult — phases "input+wc", "df-merge",
///    "transform";
///  * materialized output: streams scores to sparse ARFF — phases
///    "input+wc", "df-merge", "tfidf-output" (the write itself stays serial,
///    as in the paper's discrete mode).
class TfidfOperator : public Operator {
 public:
  std::string_view name() const override { return "tfidf"; }
  StatusOr<Dataset> Run(ops::ExecContext& ctx,
                        const std::vector<const Dataset*>& inputs,
                        Boundary output_boundary) override;

  /// Scratch-disk path used when the output is materialized.
  static constexpr const char* kArffPath = "tfidf.arff";
};

/// K-means over TF/IDF rows (input: TfidfResult, SparseMatrix, or ArffRef —
/// the latter is parsed serially as the "kmeans-input" phase).
///
///  * fused output: in-memory Clustering — phase "kmeans";
///  * materialized output: also writes assignments CSV — phase "output".
class KMeansOperator : public Operator {
 public:
  explicit KMeansOperator(ops::KMeansOptions options) : options_(options) {}

  std::string_view name() const override { return "kmeans"; }
  StatusOr<Dataset> Run(ops::ExecContext& ctx,
                        const std::vector<const Dataset*>& inputs,
                        Boundary output_boundary) override;

  const ops::KMeansOptions& options() const { return options_; }

  static constexpr const char* kCsvPath = "clusters.csv";

 private:
  ops::KMeansOptions options_;
};

/// Ranks the globally heaviest TF/IDF terms (input: TfidfResult).
///
/// A second consumer of the TF/IDF intermediate, which turns the paper's
/// linear pipeline into a genuine DAG: one fused TF/IDF result can feed
/// both K-means and this operator without recomputation — the fusion
/// optimization composing across multiple consumers.
///
///  * fused output: in-memory TermRanking — phase "top-terms";
///  * materialized output: also writes "term,score" CSV — phase "output".
class TopTermsOperator : public Operator {
 public:
  explicit TopTermsOperator(size_t top_n) : top_n_(top_n) {}

  std::string_view name() const override { return "top-terms"; }
  StatusOr<Dataset> Run(ops::ExecContext& ctx,
                        const std::vector<const Dataset*>& inputs,
                        Boundary output_boundary) override;

  static constexpr const char* kCsvPath = "top_terms.csv";

 private:
  size_t top_n_;
};

}  // namespace hpa::core

#endif  // HPA_CORE_STANDARD_OPS_H_
