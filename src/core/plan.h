#ifndef HPA_CORE_PLAN_H_
#define HPA_CORE_PLAN_H_

#include <string>
#include <vector>

#include "containers/dictionary.h"
#include "core/operator.h"

/// \file
/// An execution plan binds the paper's four optimization decisions to a
/// workflow: how parallel to run (1), where datasets cross boundaries
/// in memory vs via disk (3), and which dictionary backend each operator
/// uses (4). Parallel input (2) follows from (1): storage reads issued
/// inside parallel loops overlap automatically.

namespace hpa::core {

/// Per-node plan choices.
struct NodePlan {
  /// How this node's output reaches its consumers.
  Boundary output_boundary = Boundary::kFused;

  /// Dictionary backend for this operator's term tables.
  containers::DictBackend dict_backend = containers::DictBackend::kOpenHash;

  /// Per-document table pre-size (0 = grow on demand).
  size_t per_doc_dict_presize = 0;

  /// Semi-external input: this operator consumes the corpus through
  /// bounded windows (io/corpus_window.h) instead of materializing the
  /// full sparse matrix. Chosen by the optimizer when the in-memory
  /// footprint would bust OptimizerOptions::mem_budget_bytes.
  bool stream_corpus = false;

  /// Window payload budget in bytes when stream_corpus is set (0 lets the
  /// operator pick).
  uint64_t window_bytes = 0;
};

/// A complete plan for one workflow execution.
struct ExecutionPlan {
  /// Worker count for every parallel region.
  int workers = 1;

  /// Choice vector, indexed by workflow node id (sources ignored).
  std::vector<NodePlan> nodes;

  /// Human-readable plan dump for reports.
  std::string ToString(const class Workflow& workflow) const;
};

}  // namespace hpa::core

#endif  // HPA_CORE_PLAN_H_
