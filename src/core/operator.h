#ifndef HPA_CORE_OPERATOR_H_
#define HPA_CORE_OPERATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "ops/exec_context.h"

/// \file
/// The workflow operator abstraction. An operator transforms input
/// datasets into one output dataset, and must support both boundary kinds
/// on its output where meaningful:
///
///  * `kFused`        — hand the output to the next operator in memory;
///  * `kMaterialized` — write the output to the scratch disk and hand over
///    a file reference (the paper's discrete-operator mode, with its
///    serial format/parse/disk costs).

namespace hpa::core {

/// How a dataset crosses an operator boundary.
enum class Boundary {
  kFused,
  kMaterialized,
};

std::string_view BoundaryName(Boundary boundary);

/// A workflow operator. Implementations must be stateless across Run()
/// calls (all state flows through datasets), so one workflow definition
/// can be executed many times under different plans.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Operator name for plans and reports ("tfidf", "kmeans", ...).
  virtual std::string_view name() const = 0;

  /// Executes the operator.
  ///
  /// \param ctx executor/disks/dictionary-choice/phase-timer
  /// \param inputs one dataset per workflow input edge, in edge order;
  ///   never null. An input may be a file reference if the upstream edge
  ///   was materialized — operators must accept both forms.
  /// \param output_boundary whether to return the result in memory or
  ///   materialize it and return a reference.
  virtual StatusOr<Dataset> Run(ops::ExecContext& ctx,
                                const std::vector<const Dataset*>& inputs,
                                Boundary output_boundary) = 0;
};

}  // namespace hpa::core

#endif  // HPA_CORE_OPERATOR_H_
