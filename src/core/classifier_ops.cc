#include "core/classifier_ops.h"

#include <utility>
#include <variant>

#include "common/string_util.h"
#include "io/csv.h"
#include "io/packed_corpus.h"
#include "io/sharded_arff.h"
#include "ops/tfidf.h"

namespace hpa::core {

namespace {

Status WrongInput(std::string_view op, const Dataset& got,
                  std::string_view expected) {
  return Status::InvalidArgument(std::string(op) + ": expected " +
                                 std::string(expected) + " input, got " +
                                 std::string(DatasetKindName(got)));
}

/// Feature-input dispatch shared by the trainers and the predictor —
/// the same three shapes KMeansOperator accepts. On ArffRef input the
/// parse is timed under "<op>-input"; sharded artifacts use the parallel
/// reader and merge their quarantine into ctx.
Status ResolveFeatures(ops::ExecContext& ctx, std::string_view op,
                       const Dataset& input,
                       const containers::SparseMatrix** matrix,
                       containers::SparseMatrix* storage,
                       std::vector<std::string>* doc_names) {
  if (const auto* tfidf = std::get_if<ops::TfidfResult>(&input)) {
    *matrix = &tfidf->matrix;
    if (doc_names != nullptr) *doc_names = tfidf->doc_names;
    return Status::OK();
  }
  if (const auto* m = std::get_if<containers::SparseMatrix>(&input)) {
    *matrix = m;
    return Status::OK();
  }
  if (const auto* arff = std::get_if<ArffRef>(&input)) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition("ARFF input requires a scratch disk");
    }
    if (ctx.scratch_disk->Exists(arff->path + ".manifest")) {
      io::ArffShardedResult sharded;
      Status read;
      ctx.TimePhase(std::string(op) + "-input", [&] {
        auto r = io::ReadShardedArff(ctx.scratch_disk, ctx.executor,
                                     arff->path, ctx.fault_policy);
        if (r.ok()) {
          sharded = std::move(r).value();
        } else {
          read = r.status();
        }
      });
      HPA_RETURN_IF_ERROR(read);
      if (ctx.quarantine != nullptr) {
        ctx.quarantine->MergeFrom(std::move(sharded.quarantine));
      }
      *storage = std::move(sharded.data);
    } else {
      HPA_ASSIGN_OR_RETURN(*storage, ops::ReadTfidfArff(ctx, arff->path));
    }
    *matrix = storage;
    return Status::OK();
  }
  return WrongInput(op, input, "tfidf/sparse-matrix/arff-ref");
}

/// Reads the per-document label column off the packed corpus index (body
/// bytes are never touched). Row i of the feature matrix is document i —
/// the invariant every feature pipeline preserves — so a count mismatch
/// means the features came from a different corpus.
StatusOr<std::vector<std::string>> ReadRowLabels(ops::ExecContext& ctx,
                                                 std::string_view op,
                                                 const CorpusRef& corpus_ref,
                                                 size_t expected_rows) {
  if (ctx.corpus_disk == nullptr) {
    return Status::FailedPrecondition(std::string(op) +
                                      " requires a corpus disk for labels");
  }
  HPA_ASSIGN_OR_RETURN(
      auto reader,
      io::PackedCorpusReader::Open(ctx.corpus_disk, corpus_ref.path));
  if (reader.size() != expected_rows) {
    return Status::InvalidArgument(StrFormat(
        "%s: corpus '%s' has %zu documents for %zu feature rows",
        std::string(op).c_str(), corpus_ref.path.c_str(), reader.size(),
        expected_rows));
  }
  std::vector<std::string> labels(reader.size());
  for (size_t i = 0; i < reader.size(); ++i) labels[i] = reader.label(i);
  return labels;
}

/// Serializes a trained model to the scratch disk under the "output"
/// phase (serial, like every materialized artifact write).
Status WriteModelArtifact(ops::ExecContext& ctx, const std::string& path,
                          std::string serialized) {
  if (ctx.scratch_disk == nullptr) {
    return Status::FailedPrecondition(
        "materialized trainer output requires a scratch disk");
  }
  Status status;
  ctx.TimePhase("output", [&] {
    ctx.executor->RunSerial(parallel::WorkHint{0, "output"}, [&] {
      status = ctx.scratch_disk->WriteFile(path, serialized);
    });
  });
  return status;
}

}  // namespace

StatusOr<Dataset> NaiveBayesTrainOperator::Run(
    ops::ExecContext& ctx, const std::vector<const Dataset*>& inputs,
    Boundary output_boundary) {
  if (inputs.size() != 2) {
    return Status::InvalidArgument(
        "nb-train takes exactly two inputs (features, labeled corpus)");
  }
  const containers::SparseMatrix* matrix = nullptr;
  containers::SparseMatrix loaded;
  HPA_RETURN_IF_ERROR(ResolveFeatures(ctx, "nb-train", *inputs[0], &matrix,
                                      &loaded, nullptr));
  const auto* corpus_ref = std::get_if<CorpusRef>(inputs[1]);
  if (corpus_ref == nullptr) {
    return WrongInput("nb-train", *inputs[1], "corpus-ref");
  }
  HPA_ASSIGN_OR_RETURN(
      auto labels,
      ReadRowLabels(ctx, "nb-train", *corpus_ref, matrix->num_rows()));
  HPA_ASSIGN_OR_RETURN(auto model,
                       ops::TrainNaiveBayes(ctx, *matrix, labels, options_));
  if (output_boundary == Boundary::kMaterialized) {
    HPA_RETURN_IF_ERROR(WriteModelArtifact(
        ctx, kModelPath, ops::SerializeNaiveBayesModel(model)));
    return Dataset(ModelRef{kModelPath});
  }
  return Dataset(std::move(model));
}

StatusOr<Dataset> KnnTrainOperator::Run(
    ops::ExecContext& ctx, const std::vector<const Dataset*>& inputs,
    Boundary output_boundary) {
  if (inputs.size() != 2) {
    return Status::InvalidArgument(
        "knn-train takes exactly two inputs (features, labeled corpus)");
  }
  const containers::SparseMatrix* matrix = nullptr;
  containers::SparseMatrix loaded;
  HPA_RETURN_IF_ERROR(ResolveFeatures(ctx, "knn-train", *inputs[0], &matrix,
                                      &loaded, nullptr));
  const auto* corpus_ref = std::get_if<CorpusRef>(inputs[1]);
  if (corpus_ref == nullptr) {
    return WrongInput("knn-train", *inputs[1], "corpus-ref");
  }
  HPA_ASSIGN_OR_RETURN(
      auto labels,
      ReadRowLabels(ctx, "knn-train", *corpus_ref, matrix->num_rows()));
  HPA_ASSIGN_OR_RETURN(auto model,
                       ops::TrainKnn(ctx, *matrix, labels, options_));
  if (output_boundary == Boundary::kMaterialized) {
    HPA_RETURN_IF_ERROR(
        WriteModelArtifact(ctx, kModelPath, ops::SerializeKnnModel(model)));
    return Dataset(ModelRef{kModelPath});
  }
  return Dataset(std::move(model));
}

StatusOr<Dataset> ClassifierPredictOperator::Run(
    ops::ExecContext& ctx, const std::vector<const Dataset*>& inputs,
    Boundary output_boundary) {
  if (inputs.size() != 2) {
    return Status::InvalidArgument(
        "classify takes exactly two inputs (model, features)");
  }

  // Model input: in-memory, or a ModelRef whose artifact header line
  // ("hpa-nb-model v1" / "hpa-knn-model v1") selects the kind.
  const ops::NaiveBayesModel* nb = std::get_if<ops::NaiveBayesModel>(inputs[0]);
  const ops::KnnModel* knn = std::get_if<ops::KnnModel>(inputs[0]);
  ops::NaiveBayesModel nb_loaded;
  ops::KnnModel knn_loaded;
  if (const auto* ref = std::get_if<ModelRef>(inputs[0])) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "model-ref input requires a scratch disk");
    }
    Status status;
    ctx.TimePhase("classify-input", [&] {
      ctx.executor->RunSerial(parallel::WorkHint{0, "classify-input"}, [&] {
        auto text = ctx.scratch_disk->ReadFile(ref->path);
        if (!text.ok()) {
          status = text.status();
          return;
        }
        if (StartsWith(*text, "hpa-nb-model ")) {
          auto parsed = ops::ParseNaiveBayesModel(*text, ref->path);
          if (parsed.ok()) {
            nb_loaded = std::move(parsed).value();
            nb = &nb_loaded;
          } else {
            status = parsed.status();
          }
        } else if (StartsWith(*text, "hpa-knn-model ")) {
          auto parsed = ops::ParseKnnModel(*text, ref->path);
          if (parsed.ok()) {
            knn_loaded = std::move(parsed).value();
            knn = &knn_loaded;
          } else {
            status = parsed.status();
          }
        } else {
          status = Status::Corruption("unrecognized model artifact '" +
                                      ref->path + "'");
        }
      });
    });
    HPA_RETURN_IF_ERROR(status);
  }
  if (nb == nullptr && knn == nullptr) {
    return WrongInput("classify", *inputs[0], "nb-model/knn-model/model-ref");
  }

  const containers::SparseMatrix* matrix = nullptr;
  containers::SparseMatrix loaded;
  std::vector<std::string> doc_names;
  HPA_RETURN_IF_ERROR(ResolveFeatures(ctx, "classify", *inputs[1], &matrix,
                                      &loaded, &doc_names));

  Predictions predictions;
  predictions.doc_names = std::move(doc_names);
  if (nb != nullptr) {
    predictions.class_labels = nb->labels;
    predictions.predicted = ops::PredictNaiveBayes(ctx, *nb, *matrix);
  } else {
    predictions.class_labels = knn->labels;
    predictions.predicted = ops::PredictKnn(ctx, *knn, *matrix);
  }

  if (output_boundary == Boundary::kMaterialized) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "materialized classify requires a scratch disk");
    }
    Status status;
    ctx.TimePhase("output", [&] {
      ctx.executor->RunSerial(parallel::WorkHint{0, "output"}, [&] {
        std::string csv = "document,predicted_label\n";
        for (size_t i = 0; i < predictions.predicted.size(); ++i) {
          if (i < predictions.doc_names.size()) {
            csv += io::CsvEscape(predictions.doc_names[i]);
          } else {
            AppendUint(csv, i);
          }
          csv += ',';
          csv += io::CsvEscape(predictions.PredictedLabel(i));
          csv += '\n';
        }
        status = ctx.scratch_disk->WriteFile(kCsvPath, csv);
      });
    });
    HPA_RETURN_IF_ERROR(status);
    return Dataset(CsvRef{kCsvPath});
  }
  return Dataset(std::move(predictions));
}

StatusOr<Dataset> EvaluateOperator::Run(
    ops::ExecContext& ctx, const std::vector<const Dataset*>& inputs,
    Boundary output_boundary) {
  if (inputs.size() != 2) {
    return Status::InvalidArgument(
        "evaluate takes exactly two inputs (predictions, labeled corpus)");
  }

  // Predicted label per row, from memory or a materialized predictions CSV
  // (the rehydrated-checkpoint path). Row order is the document order.
  std::vector<std::string> predicted;
  if (const auto* preds = std::get_if<Predictions>(inputs[0])) {
    predicted.reserve(preds->predicted.size());
    for (size_t i = 0; i < preds->predicted.size(); ++i) {
      predicted.push_back(preds->PredictedLabel(i));
    }
  } else if (const auto* csv_ref = std::get_if<CsvRef>(inputs[0])) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "csv-ref input requires a scratch disk");
    }
    Status status;
    ctx.TimePhase("evaluate-input", [&] {
      ctx.executor->RunSerial(parallel::WorkHint{0, "evaluate-input"}, [&] {
        auto table = io::ReadCsv(ctx.scratch_disk, csv_ref->path);
        if (!table.ok()) {
          status = table.status();
          return;
        }
        int col = table->ColumnIndex("predicted_label");
        if (col < 0) {
          status = Status::Corruption("predictions CSV '" + csv_ref->path +
                                      "' has no predicted_label column");
          return;
        }
        for (size_t r = 1; r < table->num_rows(); ++r) {
          predicted.push_back(table->rows[r][static_cast<size_t>(col)]);
        }
      });
    });
    HPA_RETURN_IF_ERROR(status);
  } else {
    return WrongInput("evaluate", *inputs[0], "predictions/csv-ref");
  }

  const auto* corpus_ref = std::get_if<CorpusRef>(inputs[1]);
  if (corpus_ref == nullptr) {
    return WrongInput("evaluate", *inputs[1], "corpus-ref");
  }
  HPA_ASSIGN_OR_RETURN(
      auto truth,
      ReadRowLabels(ctx, "evaluate", *corpus_ref, predicted.size()));

  Evaluation eval;
  ctx.TimePhase("evaluate", [&] {
    ctx.executor->RunSerial(parallel::WorkHint{0, "evaluate"}, [&] {
      for (size_t i = 0; i < predicted.size(); ++i) {
        if (truth[i].empty()) {
          ++eval.unlabeled;
          continue;
        }
        ++eval.documents;
        if (predicted[i] == truth[i]) ++eval.correct;
      }
      eval.accuracy = eval.documents == 0
                          ? 0.0
                          : static_cast<double>(eval.correct) /
                                static_cast<double>(eval.documents);
    });
  });

  if (output_boundary == Boundary::kMaterialized) {
    if (ctx.scratch_disk == nullptr) {
      return Status::FailedPrecondition(
          "materialized evaluate requires a scratch disk");
    }
    Status status;
    ctx.TimePhase("output", [&] {
      ctx.executor->RunSerial(parallel::WorkHint{0, "output"}, [&] {
        std::string csv = "metric,value\ndocuments,";
        AppendUint(csv, eval.documents);
        csv += "\ncorrect,";
        AppendUint(csv, eval.correct);
        csv += "\nunlabeled,";
        AppendUint(csv, eval.unlabeled);
        csv += "\naccuracy,";
        AppendDouble(csv, eval.accuracy);
        csv += '\n';
        status = ctx.scratch_disk->WriteFile(kCsvPath, csv);
      });
    });
    HPA_RETURN_IF_ERROR(status);
    return Dataset(CsvRef{kCsvPath});
  }
  return Dataset(eval);
}

}  // namespace hpa::core
