#ifndef HPA_CORE_WORKFLOW_EXECUTOR_H_
#define HPA_CORE_WORKFLOW_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "core/plan.h"
#include "core/workflow.h"
#include "io/sim_disk.h"
#include "parallel/executor.h"
#include "text/tokenizer.h"

/// \file
/// Executes a workflow under an execution plan, collecting the per-phase
/// timing breakdown that Figures 3 and 4 report.

namespace hpa::core {

/// Everything a run needs from the environment. Non-owning.
struct RunEnv {
  parallel::Executor* executor = nullptr;
  io::SimDisk* corpus_disk = nullptr;
  io::SimDisk* scratch_disk = nullptr;

  /// Text-processing knobs applied to every operator context (these are
  /// environment/corpus properties, not per-node plan decisions).
  text::TokenizerOptions tokenizer;
  bool stem_tokens = false;
};

/// Result of one workflow execution.
struct WorkflowRunResult {
  /// Executor-clock seconds per named phase, across all operators.
  PhaseTimer phases;

  /// Executor-clock seconds for the whole run.
  double total_seconds = 0.0;

  /// Final datasets, one per sink node (same order as Workflow::SinkIds).
  std::vector<Dataset> outputs;
};

/// Runs `workflow` under `plan` in `env`. The plan must have one NodePlan
/// per workflow node. Sinks keep their datasets; intermediate datasets are
/// dropped as soon as their last consumer has run (bounded memory).
StatusOr<WorkflowRunResult> RunWorkflow(const Workflow& workflow,
                                        const ExecutionPlan& plan,
                                        const RunEnv& env);

}  // namespace hpa::core

#endif  // HPA_CORE_WORKFLOW_EXECUTOR_H_
