#ifndef HPA_CORE_WORKFLOW_EXECUTOR_H_
#define HPA_CORE_WORKFLOW_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/plan.h"
#include "core/workflow.h"
#include "io/sim_disk.h"
#include "parallel/executor.h"
#include "text/tokenizer.h"

/// \file
/// Executes a workflow under an execution plan, collecting the per-phase
/// timing breakdown that Figures 3 and 4 report. With a checkpoint
/// directory configured, materialized nodes commit restart manifests and
/// a re-run resumes from the last complete one (core/checkpoint.h).

namespace hpa::core {

/// Everything a run needs from the environment. Non-owning.
struct RunEnv {
  parallel::Executor* executor = nullptr;
  io::SimDisk* corpus_disk = nullptr;
  io::SimDisk* scratch_disk = nullptr;

  /// Text-processing knobs applied to every operator context (these are
  /// environment/corpus properties, not per-node plan decisions).
  text::TokenizerOptions tokenizer;
  bool stem_tokens = false;

  /// Disable the triangle-inequality-pruned K-means assignment step
  /// (ops::ExecContext::no_prune). Deliberately NOT part of checkpoint
  /// fingerprints: pruning is bit-identical, so artifacts stay valid
  /// across the toggle.
  bool no_prune = false;

  /// Fault policy threaded into every operator context (fail-fast by
  /// default; retry-skip quarantines unreadable items and the aggregate
  /// list lands on WorkflowRunResult::quarantine).
  FaultPolicy fault_policy = FaultPolicy::kFailFast;

  /// Scratch-disk-relative directory for checkpoint manifests. Empty
  /// disables checkpointing entirely (the pre-checkpoint behavior, zero
  /// cost). Non-empty: every materialized node commits a manifest after
  /// completing, and the run first tries to *resume* — nodes whose
  /// manifests validate (fingerprint + artifact CRC) are skipped and their
  /// output edges rehydrated from the on-disk artifact; invalid manifests
  /// are rejected with a logged reason and the node re-executes.
  std::string checkpoint_dir;

  /// Crash hook (see ops::ExecContext::crash_after_node): abort the run
  /// right after this node id completes (and checkpoints). -1 disables.
  int crash_after_node = -1;

  /// Advisory memory ceiling in bytes for data-resident state, threaded
  /// to every operator context (0 = unlimited). The per-node streaming
  /// decision itself lives on the plan (NodePlan::stream_corpus); this is
  /// the environment fact the optimizer derived it from.
  uint64_t mem_budget_bytes = 0;

  /// Async window prefetch for streamed nodes (off = synchronous windowed
  /// reads, the ablation baseline). Environment-wide, like stemming.
  bool prefetch_windows = true;
};

/// Result of one workflow execution.
struct WorkflowRunResult {
  /// Executor-clock seconds per named phase, across all operators.
  PhaseTimer phases;

  /// Executor-clock seconds for the whole run.
  double total_seconds = 0.0;

  /// Final datasets, one per sink node (same order as Workflow::SinkIds).
  std::vector<Dataset> outputs;

  /// Nodes skipped because a valid checkpoint covered them (0 on a fresh
  /// run or when checkpointing is disabled).
  size_t resumed_nodes = 0;

  /// Operator nodes actually executed this run (sources excluded).
  size_t replayed_nodes = 0;

  /// Why checkpoints that existed were *not* used (stale fingerprint,
  /// CRC mismatch, truncation, ...). Also logged at warning level. Empty
  /// means every manifest found was either used or absent.
  std::vector<std::string> checkpoint_rejections;

  /// Aggregate quarantine across all operators in the run, including
  /// entries restored from the checkpoints of skipped nodes (causes of
  /// restored entries are summarized to their status code).
  QuarantineList quarantine;
};

/// Runs `workflow` under `plan` in `env`. The plan must have one NodePlan
/// per workflow node. Sinks keep their datasets; intermediate datasets are
/// dropped as soon as their last consumer has run (bounded memory).
StatusOr<WorkflowRunResult> RunWorkflow(const Workflow& workflow,
                                        const ExecutionPlan& plan,
                                        const RunEnv& env);

}  // namespace hpa::core

#endif  // HPA_CORE_WORKFLOW_EXECUTOR_H_
