#ifndef HPA_CORE_WORKFLOW_H_
#define HPA_CORE_WORKFLOW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/operator.h"

/// \file
/// A workflow is a DAG of operators. Construction is append-only — an
/// operator may only consume outputs of previously added operators — so a
/// workflow is acyclic by construction and node ids double as a valid
/// topological order.

namespace hpa::core {

/// Operator DAG. Node 0..k are sources (no inputs) or consume earlier
/// nodes' outputs.
class Workflow {
 public:
  struct Node {
    std::unique_ptr<Operator> op;
    std::vector<int> inputs;  ///< ids of producing nodes
  };

  Workflow() = default;
  Workflow(Workflow&&) = default;
  Workflow& operator=(Workflow&&) = default;

  /// Adds `op` consuming the outputs of `inputs` (each < current size).
  /// Returns the new node id, or InvalidArgument on a forward reference.
  StatusOr<int> Add(std::unique_ptr<Operator> op, std::vector<int> inputs);

  /// Adds a source dataset (e.g. a CorpusRef) as node; sources have no
  /// operator and simply inject their dataset. Returns the node id.
  int AddSource(Dataset dataset, std::string label);

  size_t size() const { return nodes_.size(); }
  bool IsSource(int id) const { return nodes_[static_cast<size_t>(id)].op == nullptr; }

  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }

  /// Dataset of a source node.
  const Dataset& source_dataset(int id) const {
    return source_data_[static_cast<size_t>(id)];
  }

  /// Display label: operator name, or the source label.
  std::string_view label(int id) const;

  /// Node ids nobody consumes (the workflow outputs).
  std::vector<int> SinkIds() const;

  /// Graphviz DOT rendering of the DAG; if `plan` is non-null, edges are
  /// annotated with their boundary and nodes with their dictionary choice.
  std::string ToDot(const struct ExecutionPlan* plan = nullptr) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Dataset> source_data_;   // indexed by node id; monostate for ops
  std::vector<std::string> source_labels_;
};

}  // namespace hpa::core

#endif  // HPA_CORE_WORKFLOW_H_
