#include "core/checkpoint.h"

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/checksum.h"
#include "common/string_util.h"
#include "core/workflow_executor.h"
#include "io/file_io.h"

namespace hpa::core {

namespace {

constexpr std::string_view kMagic = "hpa-checkpoint v1";

/// Inverse of StatusCodeName over the codes a quarantine cause can carry.
StatusCode CodeFromName(std::string_view name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    if (StatusCodeName(static_cast<StatusCode>(c)) == name) {
      return static_cast<StatusCode>(c);
    }
  }
  return StatusCode::kInternal;
}

bool ParseU64(std::string_view s, int base, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::string tmp(s);
  uint64_t v = std::strtoull(tmp.c_str(), &end, base);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

uint64_t PlanFingerprint(const Workflow& workflow, const ExecutionPlan& plan,
                         const RunEnv& env) {
  // Canonical description of everything that determines artifact bytes:
  // DAG structure, source identities, materialization choices, and the
  // text-processing environment. Workers / dictionary backends / presize
  // are result-invariant and excluded on purpose.
  std::string canon = "hpa-fingerprint v1\n";
  for (size_t i = 0; i < workflow.size(); ++i) {
    int id = static_cast<int>(i);
    canon += "node ";
    AppendUint(canon, static_cast<uint64_t>(id));
    canon += ' ';
    canon += workflow.label(id);
    if (workflow.IsSource(id)) {
      const Dataset& src = workflow.source_dataset(id);
      canon += " source ";
      canon += DatasetKindName(src);
      canon += ' ';
      canon += DatasetRefPath(src);
    } else {
      canon += " inputs";
      for (int input : workflow.node(id).inputs) {
        canon += ' ';
        AppendUint(canon, static_cast<uint64_t>(input));
      }
      canon += " boundary ";
      canon += BoundaryName(plan.nodes[i].output_boundary);
    }
    canon += '\n';
  }
  canon += StrFormat("tokenizer min=%zu max=%zu lower=%d stem=%d\n",
                     env.tokenizer.min_token_length,
                     env.tokenizer.max_token_length,
                     env.tokenizer.lowercase ? 1 : 0,
                     env.stem_tokens ? 1 : 0);
  return StableHash64(canon);
}

std::string CheckpointManifestPath(const std::string& checkpoint_dir,
                                   int node_id) {
  std::string path = checkpoint_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "node-";
  AppendUint(path, static_cast<uint64_t>(node_id));
  path += ".ckpt";
  return path;
}

std::string SerializeManifest(const CheckpointManifest& manifest) {
  std::string out(kMagic);
  out += '\n';
  out += StrFormat("fingerprint %016llx\n",
                   static_cast<unsigned long long>(manifest.fingerprint));
  out += StrFormat("node %d\n", manifest.node_id);
  out += "op " + manifest.op_name + "\n";
  out += "kind " + manifest.dataset_kind + "\n";
  out += "artifact " + manifest.artifact_path + "\n";
  out += StrFormat("bytes %llu\n",
                   static_cast<unsigned long long>(manifest.artifact_bytes));
  out += StrFormat("crc32 %08x\n", manifest.artifact_crc32);
  for (const QuarantineEntry& q : manifest.quarantine.entries) {
    out += StrFormat("quarantine %d %s ", q.attempts,
                     std::string(StatusCodeName(q.cause.code())).c_str());
    out += q.id;
    out += '\n';
  }
  out += "end\n";
  return out;
}

StatusOr<CheckpointManifest> ParseManifest(std::string_view text) {
  CheckpointManifest m;
  bool saw_end = false;
  bool saw_crc = false, saw_bytes = false, saw_fp = false, saw_node = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      if (pos < text.size()) {
        return Status::Corruption("checkpoint manifest: missing final newline");
      }
      break;
    }
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line_no == 1) {
      if (line != kMagic) {
        return Status::Corruption("checkpoint manifest: bad magic '" +
                                  std::string(line) + "'");
      }
      continue;
    }
    if (saw_end) {
      return Status::Corruption("checkpoint manifest: content after 'end'");
    }
    if (line == "end") {
      saw_end = true;
      continue;
    }
    size_t sp = line.find(' ');
    if (sp == std::string_view::npos) {
      return Status::Corruption(StrFormat(
          "checkpoint manifest line %zu: no key/value separator", line_no));
    }
    std::string_view key = line.substr(0, sp);
    std::string_view value = line.substr(sp + 1);
    uint64_t u = 0;
    if (key == "fingerprint") {
      if (!ParseU64(value, 16, &m.fingerprint)) {
        return Status::Corruption("checkpoint manifest: bad fingerprint");
      }
      saw_fp = true;
    } else if (key == "node") {
      if (!ParseU64(value, 10, &u)) {
        return Status::Corruption("checkpoint manifest: bad node id");
      }
      m.node_id = static_cast<int>(u);
      saw_node = true;
    } else if (key == "op") {
      m.op_name = std::string(value);
    } else if (key == "kind") {
      m.dataset_kind = std::string(value);
    } else if (key == "artifact") {
      m.artifact_path = std::string(value);
    } else if (key == "bytes") {
      if (!ParseU64(value, 10, &m.artifact_bytes)) {
        return Status::Corruption("checkpoint manifest: bad byte count");
      }
      saw_bytes = true;
    } else if (key == "crc32") {
      if (!ParseU64(value, 16, &u) || u > 0xFFFFFFFFull) {
        return Status::Corruption("checkpoint manifest: bad crc32");
      }
      m.artifact_crc32 = static_cast<uint32_t>(u);
      saw_crc = true;
    } else if (key == "quarantine") {
      // "quarantine <attempts> <code> <id>"; causes are summarized to
      // their code on restore (messages are not round-tripped).
      size_t sp2 = value.find(' ');
      size_t sp3 = sp2 == std::string_view::npos
                       ? std::string_view::npos
                       : value.find(' ', sp2 + 1);
      if (sp3 == std::string_view::npos ||
          !ParseU64(value.substr(0, sp2), 10, &u)) {
        return Status::Corruption("checkpoint manifest: bad quarantine line");
      }
      StatusCode code =
          CodeFromName(value.substr(sp2 + 1, sp3 - sp2 - 1));
      m.quarantine.Add(std::string(value.substr(sp3 + 1)),
                       Status(code, "restored from checkpoint"),
                       static_cast<int>(u));
    } else {
      return Status::Corruption("checkpoint manifest: unknown key '" +
                                std::string(key) + "'");
    }
  }
  if (!saw_end) {
    return Status::Corruption(
        "checkpoint manifest: truncated (no 'end' terminator)");
  }
  if (!saw_fp || !saw_node || !saw_crc || !saw_bytes ||
      m.dataset_kind.empty() || m.artifact_path.empty()) {
    return Status::Corruption("checkpoint manifest: missing required field");
  }
  return m;
}

StatusOr<uint32_t> ChecksumArtifact(io::SimDisk* disk,
                                    const std::string& rel_path) {
  HPA_ASSIGN_OR_RETURN(std::string contents, disk->ReadFile(rel_path));
  return Crc32(contents);
}

/// A sharded-ARFF artifact has no single file at its base path; its own
/// manifest is the commit record and carries every shard's CRC-32, so
/// checkpoint integrity checks target that file instead. Checksumming it
/// transitively covers the shard bytes (the sharded reader re-verifies
/// each shard against the recorded CRCs on load).
std::string ChecksumTargetPath(io::SimDisk* disk, const std::string& rel_path) {
  if (!disk->Exists(rel_path) && disk->Exists(rel_path + ".manifest")) {
    return rel_path + ".manifest";
  }
  return rel_path;
}

Status WriteNodeCheckpoint(io::SimDisk* disk,
                           const std::string& checkpoint_dir,
                           CheckpointManifest manifest) {
  HPA_ASSIGN_OR_RETURN(
      std::string contents,
      disk->ReadFile(ChecksumTargetPath(disk, manifest.artifact_path)));
  manifest.artifact_bytes = contents.size();
  manifest.artifact_crc32 = Crc32(contents);
  HPA_RETURN_IF_ERROR(io::MakeDirs(disk->AbsPath(checkpoint_dir)));
  // SimDisk::WriteFile commits via the atomic temp+rename path, so the
  // manifest appears complete or not at all.
  return disk->WriteFile(CheckpointManifestPath(checkpoint_dir,
                                                manifest.node_id),
                         SerializeManifest(manifest));
}

CheckpointLoadResult LoadNodeCheckpoint(io::SimDisk* disk,
                                        const std::string& checkpoint_dir,
                                        int node_id,
                                        uint64_t expected_fingerprint) {
  CheckpointLoadResult out;
  const std::string path = CheckpointManifestPath(checkpoint_dir, node_id);
  if (!disk->Exists(path)) return out;  // fresh run, nothing to reject

  auto reject = [&](std::string reason) {
    out.valid = false;
    out.reject_reason = StrFormat("node %d: %s", node_id, reason.c_str());
    return out;
  };

  auto text = disk->ReadFile(path);
  if (!text.ok()) {
    return reject("manifest unreadable: " + text.status().ToString());
  }
  auto manifest = ParseManifest(*text);
  if (!manifest.ok()) {
    return reject(manifest.status().ToString());
  }
  if (manifest->node_id != node_id) {
    return reject(StrFormat("manifest names node %d", manifest->node_id));
  }
  if (manifest->dataset_kind != "arff-ref" &&
      manifest->dataset_kind != "csv-ref" &&
      manifest->dataset_kind != "model-ref") {
    return reject("kind '" + manifest->dataset_kind +
                  "' is not a rehydratable file reference");
  }
  if (manifest->fingerprint != expected_fingerprint) {
    return reject(StrFormat(
        "plan fingerprint mismatch (checkpoint %016llx, plan %016llx) — "
        "stale plan or corpus",
        static_cast<unsigned long long>(manifest->fingerprint),
        static_cast<unsigned long long>(expected_fingerprint)));
  }
  const std::string target = ChecksumTargetPath(disk, manifest->artifact_path);
  if (!disk->Exists(target)) {
    return reject("artifact '" + manifest->artifact_path + "' missing");
  }
  auto size = disk->FileSize(target);
  if (!size.ok() || *size != manifest->artifact_bytes) {
    return reject(StrFormat(
        "artifact size %llu != recorded %llu",
        static_cast<unsigned long long>(size.ok() ? *size : 0),
        static_cast<unsigned long long>(manifest->artifact_bytes)));
  }
  auto crc = ChecksumArtifact(disk, target);
  if (!crc.ok()) {
    return reject("artifact unreadable: " + crc.status().ToString());
  }
  if (*crc != manifest->artifact_crc32) {
    return reject(StrFormat("artifact CRC-32 %08x != recorded %08x", *crc,
                            manifest->artifact_crc32));
  }
  out.valid = true;
  out.manifest = std::move(*manifest);
  return out;
}

StatusOr<Dataset> RehydrateDataset(const CheckpointManifest& manifest) {
  if (manifest.dataset_kind == "arff-ref") {
    return Dataset(ArffRef{manifest.artifact_path});
  }
  if (manifest.dataset_kind == "csv-ref") {
    return Dataset(CsvRef{manifest.artifact_path});
  }
  if (manifest.dataset_kind == "model-ref") {
    return Dataset(ModelRef{manifest.artifact_path});
  }
  return Status::Corruption("checkpoint manifest: kind '" +
                            manifest.dataset_kind +
                            "' is not a file-reference dataset");
}

}  // namespace hpa::core
