#include "core/optimizer.h"

#include <algorithm>
#include <vector>

namespace hpa::core {

namespace {

/// Number of operator (non-source) nodes in the ancestor closure of `id`,
/// including `id` itself — the work a resume skips when this edge holds a
/// valid checkpoint.
int AncestorOperatorCount(const Workflow& workflow, int id) {
  std::vector<bool> seen(workflow.size(), false);
  std::vector<int> stack = {id};
  int count = 0;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(n)]) continue;
    seen[static_cast<size_t>(n)] = true;
    if (!workflow.IsSource(n)) {
      ++count;
      for (int input : workflow.node(n).inputs) stack.push_back(input);
    }
  }
  return count;
}

containers::DictBackend BestPaperBackend(const CostModel& model, int workers,
                                         uint64_t presize) {
  using containers::DictBackend;
  double map_cost =
      model.Estimate(DictBackend::kStdMap, workers, presize).TotalFused();
  double umap_cost =
      model.Estimate(DictBackend::kStdUnorderedMap, workers, presize)
          .TotalFused();
  return map_cost <= umap_cost ? DictBackend::kStdMap
                               : DictBackend::kStdUnorderedMap;
}

}  // namespace

ExecutionPlan OptimizeWorkflow(const Workflow& workflow,
                               const CostModel& cost_model,
                               const OptimizerOptions& options) {
  ExecutionPlan plan;
  plan.workers = options.workers > 0 ? options.workers : 1;
  plan.nodes.resize(workflow.size());

  // Rule 4: one backend decision at the planned parallelism, applied to
  // every dictionary-using operator.
  containers::DictBackend backend =
      options.paper_backends_only
          ? BestPaperBackend(cost_model, plan.workers,
                             options.per_doc_dict_presize)
          : cost_model.BestBackend(plan.workers,
                                   options.per_doc_dict_presize);

  std::vector<int> sinks = workflow.SinkIds();
  for (size_t i = 0; i < workflow.size(); ++i) {
    NodePlan& np = plan.nodes[i];
    np.dict_backend = backend;
    np.per_doc_dict_presize =
        static_cast<size_t>(options.per_doc_dict_presize);

    bool is_sink = std::find(sinks.begin(), sinks.end(),
                             static_cast<int>(i)) != sinks.end();
    // Rule 3: fuse interior edges; materialize sinks (and everything, when
    // the discrete baseline is requested).
    bool materialize = is_sink || options.force_materialize_intermediates;

    // Checkpoint placement rule: with a non-zero failure probability, an
    // interior edge is worth materializing when the expected replay time a
    // restart would save exceeds what the checkpoint costs — the extra
    // serial output pass over the fused transform plus the commit itself
    // (CRC read-back + manifest write).
    if (!materialize && options.failure_probability > 0.0 &&
        !workflow.IsSource(static_cast<int>(i))) {
      PhaseCostEstimate est = cost_model.Estimate(
          backend, plan.workers, options.per_doc_dict_presize,
          options.scratch_channels);
      double saved = options.failure_probability *
                     static_cast<double>(AncestorOperatorCount(
                         workflow, static_cast<int>(i))) *
                     est.TotalFused();
      double overhead =
          std::max(0.0, est.output_seconds - est.transform_seconds) +
          cost_model.CheckpointCommitSeconds(
              cost_model.EstimateArtifactBytes());
      materialize = saved > overhead;
    }

    np.output_boundary =
        materialize ? Boundary::kMaterialized : Boundary::kFused;
  }
  return plan;
}

}  // namespace hpa::core
