#include "core/optimizer.h"

#include <algorithm>
#include <vector>

#include "core/classifier_ops.h"
#include "core/standard_ops.h"

namespace hpa::core {

namespace {

/// Seconds one operator contributes to a replay: operators with dedicated
/// cost-model estimates (K-means, the classifier family) are priced by
/// them; everything else falls back to the fused phase estimate.
double OperatorReplaySeconds(const Operator* op, const CostModel& cost_model,
                             const PhaseCostEstimate& est, int workers) {
  if (const auto* kmeans = dynamic_cast<const KMeansOperator*>(op)) {
    const ops::KMeansOptions& kopts = kmeans->options();
    return cost_model.EstimateKMeansSeconds(kopts.k, kopts.max_iterations,
                                            workers, kopts.prune);
  }
  if (dynamic_cast<const NaiveBayesTrainOperator*>(op) != nullptr) {
    // Class count is unknown at plan time; a handful is the typical shape
    // and the merge term is what dominates anyway.
    return cost_model.EstimateNbTrainSeconds(/*num_classes=*/8, workers);
  }
  if (dynamic_cast<const KnnTrainOperator*>(op) != nullptr) {
    // "Training" is one serial copy pass over the matrix (~2 ns per
    // stored nonzero) — far below the generic fused estimate.
    return cost_model.stats().documents *
           cost_model.stats().avg_distinct_per_doc * 2.0e-9;
  }
  if (dynamic_cast<const ClassifierPredictOperator*>(op) != nullptr) {
    // Worst member of the family at this edge: k-NN's quadratic scan.
    // (NB prediction is one kernel per document — noise next to this.)
    return cost_model.EstimateKnnPredictSeconds(/*train_fraction=*/1.0,
                                                workers);
  }
  return est.TotalFused();
}

/// Replay seconds a resume from a checkpoint at `id` would skip: the
/// ancestor closure of `id` (including itself), with each generic operator
/// priced at the fused phase estimate and K-means / classifier operators
/// priced by their dedicated estimates — pruning-aware, so plan costs stay
/// honest now that the pruned assignment step does a decaying fraction of
/// the kernel work.
double AncestorReplaySeconds(const Workflow& workflow, int id,
                             const CostModel& cost_model,
                             const PhaseCostEstimate& est, int workers) {
  std::vector<bool> seen(workflow.size(), false);
  std::vector<int> stack = {id};
  double seconds = 0.0;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(n)]) continue;
    seen[static_cast<size_t>(n)] = true;
    if (workflow.IsSource(n)) continue;
    seconds += OperatorReplaySeconds(workflow.node(n).op.get(), cost_model,
                                     est, workers);
    for (int input : workflow.node(n).inputs) stack.push_back(input);
  }
  return seconds;
}

containers::DictBackend BestPaperBackend(const CostModel& model, int workers,
                                         uint64_t presize) {
  using containers::DictBackend;
  double map_cost =
      model.Estimate(DictBackend::kStdMap, workers, presize).TotalFused();
  double umap_cost =
      model.Estimate(DictBackend::kStdUnorderedMap, workers, presize)
          .TotalFused();
  return map_cost <= umap_cost ? DictBackend::kStdMap
                               : DictBackend::kStdUnorderedMap;
}

}  // namespace

ExecutionPlan OptimizeWorkflow(const Workflow& workflow,
                               const CostModel& cost_model,
                               const OptimizerOptions& options) {
  ExecutionPlan plan;
  plan.workers = options.workers > 0 ? options.workers : 1;
  plan.nodes.resize(workflow.size());

  // Rule 4: one backend decision at the planned parallelism, applied to
  // every dictionary-using operator.
  containers::DictBackend backend =
      options.paper_backends_only
          ? BestPaperBackend(cost_model, plan.workers,
                             options.per_doc_dict_presize)
          : cost_model.BestBackend(plan.workers,
                                   options.per_doc_dict_presize);

  std::vector<int> sinks = workflow.SinkIds();

  // Consumer counts, for the branching-aware checkpoint rule below: a
  // shared edge (TF/IDF feeding K-means *and* a classifier trainer) is
  // replayed once per downstream recovery path, so its expected replay
  // savings scale with its fan-out.
  std::vector<int> consumers(workflow.size(), 0);
  for (size_t i = 0; i < workflow.size(); ++i) {
    if (workflow.IsSource(static_cast<int>(i))) continue;
    for (int input : workflow.node(static_cast<int>(i)).inputs) {
      ++consumers[static_cast<size_t>(input)];
    }
  }

  for (size_t i = 0; i < workflow.size(); ++i) {
    NodePlan& np = plan.nodes[i];
    np.dict_backend = backend;
    np.per_doc_dict_presize =
        static_cast<size_t>(options.per_doc_dict_presize);

    bool is_sink = std::find(sinks.begin(), sinks.end(),
                             static_cast<int>(i)) != sinks.end();
    // Rule 3: fuse interior edges; materialize sinks (and everything, when
    // the discrete baseline is requested).
    bool materialize = is_sink || options.force_materialize_intermediates;

    // Checkpoint placement rule: with a non-zero failure probability, an
    // interior edge is worth materializing when the expected replay time a
    // restart would save exceeds what the checkpoint costs — the extra
    // serial output pass over the fused transform plus the commit itself
    // (CRC read-back + manifest write).
    if (!materialize && options.failure_probability > 0.0 &&
        !workflow.IsSource(static_cast<int>(i))) {
      PhaseCostEstimate est = cost_model.Estimate(
          backend, plan.workers, options.per_doc_dict_presize,
          options.scratch_channels);
      double saved = options.failure_probability *
                     AncestorReplaySeconds(workflow, static_cast<int>(i),
                                           cost_model, est, plan.workers) *
                     static_cast<double>(
                         std::max(1, consumers[i]));
      double overhead =
          std::max(0.0, est.output_seconds - est.transform_seconds) +
          cost_model.CheckpointCommitSeconds(
              cost_model.EstimateArtifactBytes());
      materialize = saved > overhead;
    }

    np.output_boundary =
        materialize ? Boundary::kMaterialized : Boundary::kFused;

    // Out-of-core rule: under a memory ceiling, a TF/IDF edge whose
    // in-memory sparse matrix would bust the budget is priced at its
    // thrashing penalty and compared against the streaming pipeline's
    // re-scoring overhead (one extra fused-shape pass per downstream
    // K-means iteration plus per-window latency). When the penalty wins,
    // the edge streams: bounded windows, no resident matrix — and no
    // materialized artifact, so the streamed edge stays fused regardless
    // of what the checkpoint rule wanted (there is nothing on disk to
    // resume from unless a later edge buys it).
    if (options.mem_budget_bytes > 0 && !is_sink &&
        !options.force_materialize_intermediates &&
        !workflow.IsSource(static_cast<int>(i)) &&
        dynamic_cast<const TfidfOperator*>(
            workflow.node(static_cast<int>(i)).op.get()) != nullptr) {
      double penalty = CostModel::MemoryCeilingPenaltySeconds(
          cost_model.EstimateMatrixBytes(), options.mem_budget_bytes);
      if (penalty > 0.0) {
        // Streaming hands downstream a model, not a matrix — only legal
        // when every consumer of this edge is a K-means node (the one
        // windowed consumer). The re-scoring multiplier is the slowest
        // consumer's iteration count.
        bool consumers_stream = consumers[i] > 0;
        int iterations = 0;
        for (size_t j = 0; j < workflow.size() && consumers_stream; ++j) {
          if (workflow.IsSource(static_cast<int>(j))) continue;
          const Workflow::Node& consumer = workflow.node(static_cast<int>(j));
          if (std::find(consumer.inputs.begin(), consumer.inputs.end(),
                        static_cast<int>(i)) == consumer.inputs.end()) {
            continue;
          }
          if (const auto* kmeans =
                  dynamic_cast<const KMeansOperator*>(consumer.op.get())) {
            iterations = std::max(iterations,
                                  kmeans->options().max_iterations);
          } else {
            consumers_stream = false;
          }
        }
        if (!consumers_stream) continue;
        uint64_t window =
            CostModel::ChooseWindowBytes(options.mem_budget_bytes);
        double extra = cost_model.EstimateStreamingExtraSeconds(
            backend, plan.workers, options.per_doc_dict_presize, iterations,
            window, options.corpus_latency_sec);
        // The in-memory plan sweeps the overflowing matrix once to build
        // it and once per K-means iteration — each sweep re-faults the
        // overflow, so the per-sweep penalty multiplies.
        penalty *= 1.0 + static_cast<double>(iterations);
        if (penalty > extra) {
          np.stream_corpus = true;
          np.window_bytes = window;
          np.output_boundary = Boundary::kFused;
        }
      }
    }
  }
  return plan;
}

}  // namespace hpa::core
