#include "core/optimizer.h"

#include <algorithm>

namespace hpa::core {

namespace {

containers::DictBackend BestPaperBackend(const CostModel& model, int workers,
                                         uint64_t presize) {
  using containers::DictBackend;
  double map_cost =
      model.Estimate(DictBackend::kStdMap, workers, presize).TotalFused();
  double umap_cost =
      model.Estimate(DictBackend::kStdUnorderedMap, workers, presize)
          .TotalFused();
  return map_cost <= umap_cost ? DictBackend::kStdMap
                               : DictBackend::kStdUnorderedMap;
}

}  // namespace

ExecutionPlan OptimizeWorkflow(const Workflow& workflow,
                               const CostModel& cost_model,
                               const OptimizerOptions& options) {
  ExecutionPlan plan;
  plan.workers = options.workers > 0 ? options.workers : 1;
  plan.nodes.resize(workflow.size());

  // Rule 4: one backend decision at the planned parallelism, applied to
  // every dictionary-using operator.
  containers::DictBackend backend =
      options.paper_backends_only
          ? BestPaperBackend(cost_model, plan.workers,
                             options.per_doc_dict_presize)
          : cost_model.BestBackend(plan.workers,
                                   options.per_doc_dict_presize);

  std::vector<int> sinks = workflow.SinkIds();
  for (size_t i = 0; i < workflow.size(); ++i) {
    NodePlan& np = plan.nodes[i];
    np.dict_backend = backend;
    np.per_doc_dict_presize =
        static_cast<size_t>(options.per_doc_dict_presize);

    bool is_sink = std::find(sinks.begin(), sinks.end(),
                             static_cast<int>(i)) != sinks.end();
    // Rule 3: fuse interior edges; materialize sinks (and everything, when
    // the discrete baseline is requested).
    np.output_boundary =
        (is_sink || options.force_materialize_intermediates)
            ? Boundary::kMaterialized
            : Boundary::kFused;
  }
  return plan;
}

}  // namespace hpa::core
