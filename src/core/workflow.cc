#include "core/workflow.h"

#include <utility>

#include "common/string_util.h"
#include "core/plan.h"

namespace hpa::core {

std::string_view DatasetKindName(const Dataset& dataset) {
  switch (dataset.index()) {
    case 0:
      return "none";
    case 1:
      return "corpus-ref";
    case 2:
      return "tfidf";
    case 3:
      return "sparse-matrix";
    case 4:
      return "arff-ref";
    case 5:
      return "clustering";
    case 6:
      return "csv-ref";
    case 7:
      return "term-ranking";
    case 8:
      return "nb-model";
    case 9:
      return "knn-model";
    case 10:
      return "model-ref";
    case 11:
      return "predictions";
    case 12:
      return "evaluation";
    case 13:
      return "streaming-tfidf";
  }
  return "unknown";
}

std::string_view DatasetRefPath(const Dataset& dataset) {
  if (const auto* corpus = std::get_if<CorpusRef>(&dataset)) {
    return corpus->path;
  }
  if (const auto* arff = std::get_if<ArffRef>(&dataset)) {
    return arff->path;
  }
  if (const auto* csv = std::get_if<CsvRef>(&dataset)) {
    return csv->path;
  }
  if (const auto* model = std::get_if<ModelRef>(&dataset)) {
    return model->path;
  }
  return {};
}

std::string_view BoundaryName(Boundary boundary) {
  return boundary == Boundary::kFused ? "fused" : "materialized";
}

StatusOr<int> Workflow::Add(std::unique_ptr<Operator> op,
                            std::vector<int> inputs) {
  for (int input : inputs) {
    if (input < 0 || static_cast<size_t>(input) >= nodes_.size()) {
      return Status::InvalidArgument(
          "operator '" + std::string(op->name()) +
          "' references unknown node " + std::to_string(input));
    }
  }
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{std::move(op), std::move(inputs)});
  source_data_.emplace_back();  // monostate placeholder
  source_labels_.emplace_back();
  return id;
}

int Workflow::AddSource(Dataset dataset, std::string label) {
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{nullptr, {}});
  source_data_.push_back(std::move(dataset));
  source_labels_.push_back(std::move(label));
  return id;
}

std::string_view Workflow::label(int id) const {
  const Node& n = nodes_[static_cast<size_t>(id)];
  if (n.op != nullptr) return n.op->name();
  return source_labels_[static_cast<size_t>(id)];
}

std::string Workflow::ToDot(const ExecutionPlan* plan) const {
  std::string dot = "digraph workflow {\n  rankdir=LR;\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    int id = static_cast<int>(i);
    std::string label(this->label(id));
    std::string shape = IsSource(id) ? "oval" : "box";
    if (plan != nullptr && !IsSource(id)) {
      label += StrFormat(
          "\\n%s", std::string(containers::DictBackendName(
                       plan->nodes[i].dict_backend))
                       .c_str());
    }
    dot += StrFormat("  n%d [label=\"%s\", shape=%s];\n", id, label.c_str(),
                     shape.c_str());
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int input : nodes_[i].inputs) {
      std::string attrs;
      if (plan != nullptr) {
        Boundary b = plan->nodes[static_cast<size_t>(input)].output_boundary;
        attrs = StrFormat(
            " [label=\"%s\"%s]",
            std::string(BoundaryName(b)).c_str(),
            b == Boundary::kMaterialized ? ", style=dashed" : "");
      }
      dot += StrFormat("  n%d -> n%zu%s;\n", input, i, attrs.c_str());
    }
  }
  dot += "}\n";
  return dot;
}

std::vector<int> Workflow::SinkIds() const {
  std::vector<bool> consumed(nodes_.size(), false);
  for (const Node& n : nodes_) {
    for (int input : n.inputs) consumed[static_cast<size_t>(input)] = true;
  }
  std::vector<int> sinks;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!consumed[i]) sinks.push_back(static_cast<int>(i));
  }
  return sinks;
}

}  // namespace hpa::core
