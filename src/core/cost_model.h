#ifndef HPA_CORE_COST_MODEL_H_
#define HPA_CORE_COST_MODEL_H_

#include <cstdint>

#include "containers/dictionary.h"
#include "parallel/machine_model.h"

/// \file
/// The analytic cost model behind the workflow optimizer. §3.4 ends with
/// the observation that the data-structure choice "must be taken
/// judiciously, depending on the overall time taken by each step of the
/// workflow and also on the extent to which each phase can be parallelized"
/// — this model is that judgement, made explicit: per-backend operation
/// costs and footprints, combined with a roofline over the machine's
/// bandwidth and each phase's parallelizability.

namespace hpa::core {

/// Statistical description of a text workload (obtainable from corpus
/// profiles or a prior run).
struct WorkloadStats {
  uint64_t documents = 0;
  uint64_t total_tokens = 0;
  uint64_t distinct_words = 0;

  /// Average number of *distinct* words per document (per-doc table size).
  double avg_distinct_per_doc = 0.0;
};

/// Per-backend dictionary cost parameters (rough nanosecond-scale costs on
/// a paper-era core; relative magnitudes are what matters).
struct DictCostParams {
  double insert_ns = 0.0;       ///< FindOrInsert on a growing table
  double lookup_ns = 0.0;       ///< Find on a built table
  double bytes_per_entry = 0.0; ///< steady-state bytes per stored word
  double fixed_table_bytes = 0.0; ///< per-table overhead (bucket arrays)
  bool sorted_iteration = false;  ///< free sorted term-id assignment

  /// Built-in defaults for a backend, reflecting the paper's measured
  /// ordering: tree inserts beat the (resize-burdened, memory-hungry)
  /// chained hash; hash lookups beat the tree's O(log n).
  static DictCostParams Defaults(containers::DictBackend backend,
                                 uint64_t per_doc_presize);
};

/// Predicted per-phase times for one backend choice at a worker count.
struct PhaseCostEstimate {
  double input_wc_seconds = 0.0;
  double transform_seconds = 0.0;
  /// Discrete ARFF scoring+write: strictly serial on single-channel
  /// scratch (the classic format constraint), parallel when the estimate
  /// was made for a multi-channel device (sharded-ARFF output).
  double output_seconds = 0.0;
  double dict_bytes = 0.0;       ///< predicted dictionary footprint

  double TotalFused() const { return input_wc_seconds + transform_seconds; }
};

/// Cost model instance: machine + workload.
class CostModel {
 public:
  CostModel(const parallel::MachineModel& machine, const WorkloadStats& stats)
      : machine_(machine), stats_(stats) {}

  /// Predicts phase times for `backend` with `workers` parallel workers and
  /// the given per-document table pre-size. `output_channels` is the
  /// scratch device's channel count: 1 models the serial single-file ARFF
  /// pass, > 1 the sharded-ARFF output whose scoring+formatting work
  /// parallelizes across workers (shard writes overlap at the device, so
  /// only the CPU side remains in this estimate — disk time comes from the
  /// disk model, as ever).
  PhaseCostEstimate Estimate(containers::DictBackend backend, int workers,
                             uint64_t per_doc_presize,
                             int output_channels = 1) const;

  /// The backend minimizing fused workflow time at `workers`.
  containers::DictBackend BestBackend(int workers,
                                      uint64_t per_doc_presize) const;

  /// Predicted size of the sparse-ARFF artifact a materialized edge leaves
  /// on the scratch disk (score rows + attribute header).
  uint64_t EstimateArtifactBytes() const;

  /// Predicted resident bytes of the in-memory TF/IDF SparseMatrix: one
  /// (id, value) pair per stored score plus per-row vector headers. This
  /// is what a fused in-memory TF/IDF→K-means edge keeps live for the
  /// whole clustering phase — the footprint the memory-ceiling term
  /// prices.
  uint64_t EstimateMatrixBytes() const;

  /// Seconds of thrash penalty ONE full sweep over `resident_bytes` of
  /// data-resident state pays when it exceeds `budget_bytes`: the overflow
  /// priced at random-fault swap throughput (every overflowing byte is
  /// evicted and read back per sweep — the classic thrashing cliff,
  /// linearized). Callers multiply by the consumer's sweep count; an
  /// iterative K-means re-faults the overflow every iteration. 0 when the
  /// state fits or no budget is set.
  static double MemoryCeilingPenaltySeconds(uint64_t resident_bytes,
                                            uint64_t budget_bytes);

  /// Extra seconds the streaming TF/IDF→K-means pipeline pays over the
  /// in-memory plan: every K-means iteration re-scores the corpus from
  /// window bytes (one fused-phase-shaped pass per iteration) and each
  /// window acquisition pays the device latency once per pass. This is
  /// the price of never holding the matrix; the optimizer flips to
  /// streaming when the memory-ceiling penalty of the in-memory plan
  /// exceeds it.
  double EstimateStreamingExtraSeconds(containers::DictBackend backend,
                                       int workers, uint64_t per_doc_presize,
                                       int kmeans_iterations,
                                       uint64_t window_bytes,
                                       double device_latency_sec) const;

  /// Window payload budget for a memory ceiling: half the budget (current
  /// window + one prefetched stays under it), clamped to at least 64 KiB
  /// so windows amortize per-window latency. 0 budget → 0 (operator
  /// default).
  static uint64_t ChooseWindowBytes(uint64_t budget_bytes);

  /// Expected fraction of documents whose pruned assignment step still
  /// pays the full k-way kernel scan in (0-based) iteration `iteration`.
  /// Iteration 0 is always exact (no bounds exist yet); after that the
  /// exact fraction decays geometrically toward a floor as centroids
  /// settle and drift-loosened bounds keep holding — the measured shape of
  /// bench/ablation_kmeans_prune on both corpora.
  static double PrunedExactFraction(int iteration);

  /// Predicted seconds for a K-means run over this workload: `iterations`
  /// assignment sweeps (each document × k sparse kernels of
  /// ~avg_distinct_per_doc nonzeros, parallel over documents) plus the
  /// serial per-iteration merge/finalize term (k × vocabulary, the Amdahl
  /// term of Figure 1). With `prune` the per-document kernel count drops
  /// to f·k + (1−f)·1 at exact fraction f = PrunedExactFraction(t) —
  /// skipped documents still pay one kernel to their assigned centroid
  /// (the bit-identity discipline). Used by the optimizer to price the
  /// replay a checkpoint under a K-means node would save.
  double EstimateKMeansSeconds(int k, int iterations, int workers,
                               bool prune) const;

  /// Predicted seconds for a Naive Bayes training pass over this
  /// workload: one fixed-point accumulate per stored nonzero (parallel
  /// over documents) plus the serial accumulator-tree merge and
  /// log-likelihood finalize terms (num_classes × vocabulary cells each —
  /// the same Amdahl shape as the K-means merge). Used by the optimizer to
  /// price classifier-trainer ancestors in the checkpoint placement rule.
  double EstimateNbTrainSeconds(int num_classes, int workers) const;

  /// Predicted seconds for a k-NN prediction pass: every query row pays
  /// one sparse distance kernel (~avg_distinct_per_doc nonzeros) per
  /// training row, parallel over queries. `train_fraction` is the share
  /// of documents frozen as training rows (1.0 = self-classification of
  /// the whole corpus, the ablation's shape).
  double EstimateKnnPredictSeconds(double train_fraction, int workers) const;

  /// Seconds to *commit* a checkpoint for an artifact of `bytes`: the
  /// CRC-32 read-back of the artifact plus the manifest write, priced at
  /// the scratch device's single-channel bandwidth. This is the overhead a
  /// checkpointed edge pays on top of materialization itself; the
  /// optimizer weighs it against expected replay savings
  /// (OptimizerOptions::failure_probability).
  double CheckpointCommitSeconds(uint64_t bytes) const;

  const WorkloadStats& stats() const { return stats_; }

 private:
  parallel::MachineModel machine_;
  WorkloadStats stats_;
};

}  // namespace hpa::core

#endif  // HPA_CORE_COST_MODEL_H_
