#include "core/plan_io.h"

#include "common/string_util.h"

namespace hpa::core {

std::string SerializePlan(const ExecutionPlan& plan,
                          const Workflow& workflow) {
  std::string out = "hpa-plan v1\n";
  out += StrFormat("workers %d\n", plan.workers);
  for (size_t i = 0; i < workflow.size(); ++i) {
    int id = static_cast<int>(i);
    if (workflow.IsSource(id)) {
      out += StrFormat("node %d source %s\n", id,
                       std::string(workflow.label(id)).c_str());
      continue;
    }
    const NodePlan& np = plan.nodes[i];
    out += StrFormat(
        "node %d op=%s boundary=%s dict=%s presize=%zu", id,
        std::string(workflow.label(id)).c_str(),
        std::string(BoundaryName(np.output_boundary)).c_str(),
        std::string(containers::DictBackendName(np.dict_backend)).c_str(),
        np.per_doc_dict_presize);
    // Out-of-core keys only appear when set, so pre-streaming plan files
    // round-trip byte-identically.
    if (np.stream_corpus) {
      out += StrFormat(" stream=1 window=%llu",
                       static_cast<unsigned long long>(np.window_bytes));
    }
    out += "\n";
  }
  return out;
}

namespace {

Status Malformed(size_t line_number, const std::string& why) {
  return Status::Corruption(
      StrFormat("plan line %zu: %s", line_number, why.c_str()));
}

}  // namespace

StatusOr<ExecutionPlan> ParsePlan(std::string_view text,
                                  const Workflow& workflow) {
  ExecutionPlan plan;
  plan.nodes.resize(workflow.size());
  std::vector<bool> seen(workflow.size(), false);

  std::vector<std::string_view> lines = Split(text, '\n');
  size_t line_number = 0;
  bool saw_magic = false;
  bool saw_workers = false;

  for (std::string_view raw : lines) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (!saw_magic) {
      if (line != "hpa-plan v1") {
        return Malformed(line_number,
                         "expected header 'hpa-plan v1', got '" +
                             std::string(line) + "'");
      }
      saw_magic = true;
      continue;
    }

    std::vector<std::string_view> fields = Split(line, ' ');
    if (fields[0] == "workers") {
      int64_t w = 0;
      if (fields.size() != 2 || !ParseInt64(fields[1], &w) || w < 1) {
        return Malformed(line_number, "bad workers line");
      }
      plan.workers = static_cast<int>(w);
      saw_workers = true;
      continue;
    }
    if (fields[0] != "node" || fields.size() < 3) {
      return Malformed(line_number, "expected a node line");
    }
    int64_t id = 0;
    if (!ParseInt64(fields[1], &id) || id < 0 ||
        static_cast<size_t>(id) >= workflow.size()) {
      return Malformed(line_number, "node id out of range");
    }
    if (seen[static_cast<size_t>(id)]) {
      return Malformed(line_number,
                       "duplicate node " + std::to_string(id));
    }
    seen[static_cast<size_t>(id)] = true;

    bool is_source_line = fields[2] == "source";
    if (is_source_line != workflow.IsSource(static_cast<int>(id))) {
      return Malformed(line_number,
                       StrFormat("node %lld kind does not match workflow",
                                 static_cast<long long>(id)));
    }
    if (is_source_line) continue;

    NodePlan& np = plan.nodes[static_cast<size_t>(id)];
    for (size_t f = 2; f < fields.size(); ++f) {
      std::string_view field = fields[f];
      if (field.empty()) continue;
      size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        return Malformed(line_number,
                         "expected key=value, got '" + std::string(field) +
                             "'");
      }
      std::string_view key = field.substr(0, eq);
      std::string_view value = field.substr(eq + 1);
      if (key == "op") {
        if (value != workflow.label(static_cast<int>(id))) {
          return Malformed(
              line_number,
              StrFormat("operator mismatch: plan says '%s', workflow has "
                        "'%s'",
                        std::string(value).c_str(),
                        std::string(workflow.label(static_cast<int>(id)))
                            .c_str()));
        }
      } else if (key == "boundary") {
        if (value == "fused") {
          np.output_boundary = Boundary::kFused;
        } else if (value == "materialized") {
          np.output_boundary = Boundary::kMaterialized;
        } else {
          return Malformed(line_number, "unknown boundary '" +
                                            std::string(value) + "'");
        }
      } else if (key == "dict") {
        auto backend = containers::ParseDictBackend(value);
        if (!backend.ok()) return Malformed(line_number,
                                            backend.status().message());
        np.dict_backend = *backend;
      } else if (key == "presize") {
        int64_t p = 0;
        if (!ParseInt64(value, &p) || p < 0) {
          return Malformed(line_number, "bad presize");
        }
        np.per_doc_dict_presize = static_cast<size_t>(p);
      } else if (key == "stream") {
        if (value == "1") {
          np.stream_corpus = true;
        } else if (value == "0") {
          np.stream_corpus = false;
        } else {
          return Malformed(line_number,
                           "bad stream '" + std::string(value) + "'");
        }
      } else if (key == "window") {
        int64_t wb = 0;
        if (!ParseInt64(value, &wb) || wb < 0) {
          return Malformed(line_number, "bad window");
        }
        np.window_bytes = static_cast<uint64_t>(wb);
      } else {
        return Malformed(line_number,
                         "unknown key '" + std::string(key) + "'");
      }
    }
  }

  if (!saw_magic) return Status::Corruption("empty plan text");
  if (!saw_workers) return Status::Corruption("plan is missing 'workers'");
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::Corruption(
          StrFormat("plan is missing node %zu", i));
    }
  }
  return plan;
}

}  // namespace hpa::core
