#ifndef HPA_COMMON_RANDOM_H_
#define HPA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// \file
/// Deterministic pseudo-random generation used by the synthetic corpus
/// generator and by randomized tests. We implement our own generators so
/// that corpora are bit-identical across standard libraries and platforms
/// (std::mt19937 distributions are not portable across implementations).

namespace hpa {

/// SplitMix64: tiny, fast generator; also used to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: high-quality general-purpose PRNG (Blackman & Vigna).
class Rng {
 public:
  /// Seeds the full state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) {
    SplitMix64 sm(seed);
    for (uint64_t& s : state_) s = sm.Next();
  }

  /// Next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded sampling (biased by < 2^-64,
    // immaterial for our workloads and still deterministic).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal deviate (Box–Muller, one value per call).
  double NextGaussian();

  /// Log-normal deviate with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma) {
    double n = NextGaussian();
    return Exp(mu + sigma * n);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  static double Exp(double x);

  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples from a Zipf(s) distribution over ranks {0, ..., n-1}:
/// P(rank k) proportional to 1 / (k+1)^s.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample independent of n — essential for vocabularies of
/// hundreds of thousands of words (Table 1 of the paper).
class ZipfSampler {
 public:
  /// \param n number of ranks (> 0)
  /// \param s skew exponent (> 0, typically near 1 for natural language)
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

/// Fisher–Yates shuffle of `items` using `rng`.
template <typename T>
void Shuffle(std::vector<T>& items, Rng& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace hpa

#endif  // HPA_COMMON_RANDOM_H_
