#ifndef HPA_COMMON_CIRCUIT_BREAKER_H_
#define HPA_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string_view>

/// \file
/// Deterministic circuit breaker: the failure-isolation primitive of the
/// serving-robustness layer (and reusable anywhere a dependency can enter
/// a fault storm).
///
/// Classic closed -> open -> half-open state machine, with one twist that
/// matters in this repo: every transition is a *pure function of the call
/// sequence and the caller-supplied clock*. Time is the executor's
/// (virtual) clock passed into each call — never wall time — and the
/// half-open probe selection hashes the request token against a seeded
/// stream instead of racing "first caller wins". Two breakers fed the
/// same (Allow/OnSuccess/OnFailure, now) sequence are therefore in
/// bit-identical states, which is what lets the chaos soak re-run a
/// scenario from its seed and demand identical shed sets.
///
/// Threading contract: like the AnalyticsServer that owns one, a breaker
/// is driven from a single thread (decisions before a parallel region,
/// outcomes folded after it, both in slot order). It is deliberately NOT
/// internally synchronized — determinism, not lock-freedom, is the point.

namespace hpa {

/// Tuning knobs. Defaults suit per-request scoring: trip after a short
/// run of consecutive failures, back off for a bounded window, then let a
/// few hashed probes through before trusting the dependency again.
struct CircuitBreakerOptions {
  /// Consecutive failures (while closed) that trip the breaker open.
  int failure_threshold = 5;

  /// How long the breaker stays open before probing, in caller-clock
  /// seconds (executor/virtual time, never wall time).
  double open_sec = 0.250;

  /// Probe budget per half-open round: at most this many requests are
  /// admitted before the round must resolve (close or re-open).
  int half_open_probes = 2;

  /// Consecutive probe successes required to close from half-open.
  int half_open_successes = 2;

  /// Fraction of tokens eligible as probes while half-open, selected by
  /// seeded hash of (seed, open-epoch, token) — which requests probe is
  /// unbiased and reproducible, not "whoever arrived first". 1.0 admits
  /// any token up to the probe budget.
  double probe_fraction = 0.5;

  /// Probe-selection stream seed.
  uint64_t seed = 0xB4EAC0DE5EEDULL;
};

/// Breaker state, in the classic sense.
enum class BreakerState {
  kClosed,    ///< healthy: everything admitted
  kOpen,      ///< tripped: everything shed until the window elapses
  kHalfOpen,  ///< probing: hash-selected requests admitted, rest shed
};

/// Stable lowercase name: "closed" | "open" | "half-open".
std::string_view BreakerStateName(BreakerState state);

/// Deterministic circuit breaker (see file comment for the contract).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  /// Admission decision for the request identified by `token` at caller
  /// time `now_sec`. Returns false when the request must be shed (the
  /// caller answers it with a bounded error instead of doing the work).
  /// May transition open -> half-open when the open window has elapsed.
  bool Allow(uint64_t token, double now_sec);

  /// Outcome feedback for an admitted request. Callers fold outcomes in
  /// a deterministic order (the server uses batch slot order).
  void OnSuccess(double now_sec);
  void OnFailure(double now_sec);

  BreakerState state() const { return state_; }
  const CircuitBreakerOptions& options() const { return options_; }

  /// When open: the caller-clock time at which probing may begin.
  double open_until_sec() const { return open_until_sec_; }

  // Lifetime counters (single-threaded, plain fields).
  uint64_t sheds() const { return sheds_; }        ///< Allow() == false
  uint64_t opens() const { return opens_; }        ///< trips to kOpen
  uint64_t closes() const { return closes_; }      ///< recoveries to kClosed
  uint64_t half_opens() const { return half_opens_; }  ///< probing rounds begun
  uint64_t probes_admitted() const { return probes_admitted_; }

 private:
  void TripOpen(double now_sec);

  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  double open_until_sec_ = 0.0;
  int consecutive_failures_ = 0;
  int round_probes_ = 0;     ///< probes admitted this half-open round
  int round_successes_ = 0;  ///< probe successes this half-open round
  uint64_t sheds_ = 0;
  uint64_t opens_ = 0;
  uint64_t closes_ = 0;
  uint64_t half_opens_ = 0;
  uint64_t probes_admitted_ = 0;
};

}  // namespace hpa

#endif  // HPA_COMMON_CIRCUIT_BREAKER_H_
