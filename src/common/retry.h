#ifndef HPA_COMMON_RETRY_H_
#define HPA_COMMON_RETRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

/// \file
/// Fault-tolerance primitives shared by the I/O and operator layers:
///
///  * `RetryPolicy`    — bounded attempts with exponential backoff and
///    deterministic jitter. Backoff durations are a pure function of
///    (policy seed, request token, attempt), so a simulated run charges
///    exactly the same recovery time no matter how its worker threads
///    interleave — recovery is *priced*, not just performed.
///  * `FaultPolicy`    — what a bulk input operator does once retries are
///    exhausted for one item: abort the whole run (`kFailFast`, the
///    pre-fault-tolerance behavior) or quarantine the item and continue
///    (`kRetryThenSkip`).
///  * `QuarantineList` — the per-worker record of skipped items (document
///    or shard id + the cause), merged after a parallel loop like any
///    other sharded partial and surfaced in reports.
///
/// The paper's parallel-input optimization (§3.2) assumes every one of the
/// corpus files reads cleanly; at the ROADMAP's production scale the
/// storage layer must instead be treated as unreliable-but-recoverable
/// (cf. Zhang & Yang, "Optimizing I/O for Big Array Analytics").

namespace hpa {

/// What a bulk operator does with an item whose reads keep failing.
enum class FaultPolicy {
  /// First unrecoverable item aborts the operator (and cooperatively
  /// cancels the rest of the parallel region). The default.
  kFailFast,

  /// Unrecoverable items are quarantined (id + cause recorded) and the
  /// operator completes on the remaining data.
  kRetryThenSkip,
};

/// Stable lowercase name: "fail-fast" | "retry-skip".
std::string_view FaultPolicyName(FaultPolicy policy);

/// Parses "fail-fast" | "retry-skip" (the --fault-policy flag spellings).
bool ParseFaultPolicy(std::string_view text, FaultPolicy* out);

/// Bounded-retry policy with exponential backoff and deterministic jitter.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 4;

  /// Backoff before the first retry.
  double initial_backoff_sec = 0.002;

  /// Growth factor per retry (exponential backoff).
  double backoff_multiplier = 2.0;

  /// Upper bound on a single backoff.
  double max_backoff_sec = 0.250;

  /// Jitter amplitude as a fraction of the nominal backoff: the actual
  /// backoff is nominal * (1 + jitter_fraction * u) with u in [-1, 1)
  /// derived deterministically from (seed, token, attempt).
  double jitter_fraction = 0.25;

  /// Stream seed for the jitter; two runs with the same seed charge
  /// identical backoff schedules.
  uint64_t seed = 0x9E3779B97F4A7C15ULL;

  /// Policy that never retries (restores pre-retry error propagation).
  static RetryPolicy NoRetry() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  /// True for failure categories where a retry can plausibly succeed:
  /// kIoError (transient device/OS failures) and kCorruption (a re-read
  /// may return clean bytes after a transient transfer error). Permanent
  /// conditions (kNotFound, kInvalidArgument, ...) are not retryable.
  bool IsRetryable(const Status& status) const;

  /// True iff attempt `attempt` (0-based) failed with a retryable status
  /// and the attempt budget allows another try.
  bool ShouldRetry(const Status& status, int attempt) const {
    return attempt + 1 < max_attempts && IsRetryable(status);
  }

  /// Backoff to wait after failed attempt `attempt` (0-based), with
  /// deterministic jitter derived from `token` (a stable identifier of the
  /// request, e.g. a path hash). Non-negative; capped at max_backoff_sec.
  double BackoffSeconds(int attempt, uint64_t token) const;
};

/// One quarantined item: the document/shard id, why it was given up on,
/// and how many read attempts were spent before quarantining.
struct QuarantineEntry {
  std::string id;
  Status cause;
  int attempts = 1;
};

/// Accumulates quarantined items. Each parallel worker fills its own list
/// (no synchronization), and the per-worker lists are merged after the
/// loop in worker-slot order — the same discipline as the sharded
/// dictionary partials. `SortById()` then makes the merged order
/// independent of the timing-dependent worker assignment.
struct QuarantineList {
  std::vector<QuarantineEntry> entries;

  /// Total retry attempts spent on items that were eventually quarantined
  /// *or* recovered inside the operator that owns this list (operators
  /// fold the device counters in where applicable).
  uint64_t retries = 0;

  void Add(std::string id, Status cause, int attempts = 1) {
    entries.push_back(QuarantineEntry{std::move(id), std::move(cause), attempts});
  }

  /// Moves all of `other`'s entries and retry counts into this list.
  void MergeFrom(QuarantineList&& other);

  /// Sorts entries by id for run-to-run stable reporting.
  void SortById();

  size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }

  /// Human-readable one-line-per-entry summary (capped at `max_entries`
  /// entries, with a "... and N more" tail).
  std::string Summary(size_t max_entries = 5) const;
};

namespace retry_internal {
inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
const Status& AsStatus(const StatusOr<T>& s) {
  return s.status();
}
}  // namespace retry_internal

/// Runs `fn` (returning Status or StatusOr<T>) up to policy.max_attempts
/// times, invoking `on_backoff(seconds)` before each retry so the caller
/// can charge the wait to its clock (virtual or real). Returns the first
/// success or the last failure. `attempts_out`, if non-null, receives the
/// number of tries performed.
template <typename Fn, typename OnBackoff>
auto RetryCall(const RetryPolicy& policy, uint64_t token, Fn fn,
               OnBackoff on_backoff, int* attempts_out = nullptr)
    -> decltype(fn(0)) {
  int attempt = 0;
  for (;; ++attempt) {
    auto result = fn(attempt);
    if (retry_internal::AsStatus(result).ok() ||
        !policy.ShouldRetry(retry_internal::AsStatus(result), attempt)) {
      if (attempts_out != nullptr) *attempts_out = attempt + 1;
      return result;
    }
    on_backoff(policy.BackoffSeconds(attempt, token));
  }
}

}  // namespace hpa

#endif  // HPA_COMMON_RETRY_H_
