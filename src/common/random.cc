#include "common/random.h"

#include <cassert>
#include <cmath>

namespace hpa {

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box–Muller transform on two uniforms.
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Exp(double x) { return std::exp(x); }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  assert(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

// H(x) = integral of 1/t^s from 1 to x, shifted so it is invertible; the
// standard helper of the rejection-inversion method.
double ZipfSampler::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  // Rejection-inversion (Hörmann & Derflinger 1996). Expected iterations < 2.
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    // Clamp into the valid domain; x can fall marginally outside because of
    // floating-point rounding at the interval edges.
    if (x < 1.0) x = 1.0;
    if (x > static_cast<double>(n_)) x = static_cast<double>(n_);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // ranks are 0-based externally
    }
  }
}

}  // namespace hpa
