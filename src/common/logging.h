#ifndef HPA_COMMON_LOGGING_H_
#define HPA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Minimal leveled logging and check macros. Log output goes to stderr so
/// bench result tables on stdout stay machine-parsable.

namespace hpa {

/// Severity of a log statement.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

namespace log_internal {
/// Process-wide minimum level; statements below it are suppressed.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);
const char* LevelTag(LogLevel level);
}  // namespace log_internal

/// Sets the process-wide minimum level printed by HPA_LOG.
inline void SetMinLogLevel(LogLevel level) {
  log_internal::SetMinLogLevel(level);
}

}  // namespace hpa

/// Leveled printf-style logging: HPA_LOG(kInfo, "loaded %zu docs", n);
#define HPA_LOG(level, ...)                                                   \
  do {                                                                        \
    if (::hpa::LogLevel::level >= ::hpa::log_internal::GetMinLogLevel()) {    \
      std::fprintf(stderr, "[%s] ",                                           \
                   ::hpa::log_internal::LevelTag(::hpa::LogLevel::level));    \
      std::fprintf(stderr, __VA_ARGS__);                                      \
      std::fprintf(stderr, "\n");                                             \
    }                                                                         \
  } while (0)

/// Fatal invariant check, active in all build types.
#define HPA_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::fprintf(stderr, "  " __VA_ARGS__);                             \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                      \
    }                                                                     \
  } while (0)

#endif  // HPA_COMMON_LOGGING_H_
