#include "common/status.h"

namespace hpa {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace hpa
