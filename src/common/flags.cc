#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/string_util.h"

namespace hpa {

FlagSet::FlagSet(std::string program_name, std::string description)
    : program_name_(std::move(program_name)),
      description_(std::move(description)) {}

void FlagSet::DefineString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.default_text = default_value;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::DefineInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.default_text = std::to_string(default_value);
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::DefineDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.default_text = StrFormat("%g", default_value);
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::DefineBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.default_text = default_value ? "true" : "false";
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagSet::SetFromText(Flag& flag, const std::string& name,
                            std::string_view text) {
  switch (flag.type) {
    case Type::kString:
      flag.string_value = std::string(text);
      return Status::OK();
    case Type::kInt: {
      int64_t v = 0;
      if (!ParseInt64(text, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" +
                                       std::string(text) + "'");
      }
      flag.int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      double v = 0.0;
      if (!ParseDouble(text, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" +
                                       std::string(text) + "'");
      }
      flag.double_value = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (text == "true" || text == "1" || text == "yes") {
        flag.bool_value = true;
      } else if (text == "false" || text == "0" || text == "no") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" +
                                       std::string(text) + "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string name;
    std::string_view value_text;
    bool have_value = false;
    size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(body.substr(0, eq));
      value_text = body.substr(eq + 1);
      have_value = true;
    } else {
      name = std::string(body);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" + Help());
    }
    Flag& flag = it->second;
    if (!have_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;  // bare --flag enables a bool
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value_text = argv[++i];
    }
    HPA_RETURN_IF_ERROR(SetFromText(flag, name, value_text));
  }
  return Status::OK();
}

const FlagSet::Flag& FlagSet::Require(const std::string& name,
                                      Type type) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.type != type) {
    std::fprintf(stderr, "FATAL: flag --%s not defined with expected type\n",
                 name.c_str());
    std::abort();
  }
  return it->second;
}

std::string FlagSet::GetString(const std::string& name) const {
  return Require(name, Type::kString).string_value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return Require(name, Type::kInt).int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Require(name, Type::kDouble).double_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Require(name, Type::kBool).bool_value;
}

std::string FlagSet::Help() const {
  std::string out = program_name_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_text.c_str());
  }
  return out;
}

}  // namespace hpa
