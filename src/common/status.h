#ifndef HPA_COMMON_STATUS_H_
#define HPA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

/// \file
/// Error handling primitives for the HPA library.
///
/// HPA does not throw exceptions across API boundaries. Fallible operations
/// return `Status` (no payload) or `StatusOr<T>` (payload-or-error), in the
/// style of RocksDB / Abseil. A `Status` is cheap to copy when OK (no
/// allocation) and carries a code plus a human-readable message otherwise.

namespace hpa {

/// Machine-inspectable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

/// Returns a stable lowercase name for `code` (e.g. "io_error").
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// Usage:
/// \code
///   Status s = writer.Flush();
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<code_name>: <message>".
  std::string ToString() const;

  /// Returns this status with `context` prepended to the message, or OK
  /// unchanged. Useful when propagating errors up a call chain.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Result of a fallible operation that produces a `T` on success.
///
/// Either holds a value (status is OK) or an error status. Accessing the
/// value of an errored `StatusOr` aborts in debug builds and is undefined
/// in release builds; always check `ok()` first or use `value_or`.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `s` must not be OK.
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  /// Constructs from a value; status is OK.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// Returns the contained value. Requires `ok()`.
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hpa

/// Propagates a non-OK `Status` to the caller. Expression form:
///   HPA_RETURN_IF_ERROR(file.Write(buf));
#define HPA_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::hpa::Status _hpa_status_ = (expr);          \
    if (!_hpa_status_.ok()) return _hpa_status_;  \
  } while (0)

/// Assigns the value of a `StatusOr` expression to `lhs`, or propagates the
/// error:
///   HPA_ASSIGN_OR_RETURN(auto corpus, LoadCorpus(path));
#define HPA_ASSIGN_OR_RETURN(lhs, expr)                      \
  HPA_ASSIGN_OR_RETURN_IMPL_(                                \
      HPA_STATUS_CONCAT_(_hpa_statusor_, __LINE__), lhs, expr)

#define HPA_STATUS_CONCAT_INNER_(a, b) a##b
#define HPA_STATUS_CONCAT_(a, b) HPA_STATUS_CONCAT_INNER_(a, b)
#define HPA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // HPA_COMMON_STATUS_H_
