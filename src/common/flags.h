#ifndef HPA_COMMON_FLAGS_H_
#define HPA_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file
/// A tiny `--key=value` command-line flag parser for bench harnesses and
/// example binaries. Flags are declared up front (with help text and a
/// default) so every binary can print a consistent `--help`.

namespace hpa {

/// Declared flags plus parsed values for one binary invocation.
class FlagSet {
 public:
  /// \param program_name shown in the `--help` banner
  /// \param description one-line summary shown in the `--help` banner
  FlagSet(std::string program_name, std::string description);

  /// Declares a flag. Must be called before Parse().
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv. Accepts `--name=value`, `--name value`, and bare `--name`
  /// for bool flags. Returns InvalidArgument for unknown flags or malformed
  /// values. `--help` sets help_requested().
  Status Parse(int argc, char** argv);

  /// Accessors; abort if `name` was never defined (programming error).
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True iff `--help` was passed; callers should print Help() and exit 0.
  bool help_requested() const { return help_requested_; }

  /// Human-readable usage text for all declared flags.
  std::string Help() const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    Type type;
    std::string help;
    std::string default_text;
    // Parsed or default value, by type.
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  Status SetFromText(Flag& flag, const std::string& name,
                     std::string_view text);
  const Flag& Require(const std::string& name, Type type) const;

  std::string program_name_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace hpa

#endif  // HPA_COMMON_FLAGS_H_
