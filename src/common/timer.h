#ifndef HPA_COMMON_TIMER_H_
#define HPA_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file
/// Wall-clock timing utilities and named-phase accumulation.

namespace hpa {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  /// Starts the timer at construction.
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer from zero.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time into named phases, preserving first-seen order.
///
/// Phases may be re-entered; their durations accumulate. This is the unit in
/// which the paper's Figures 3 and 4 report stacked execution-time bars
/// (input+wc, df-merge, tfidf-output, kmeans-input, transform, kmeans,
/// output).
class PhaseTimer {
 public:
  /// One accumulated phase: seconds plus optional named integer counters
  /// (operation telemetry riding along with the timing, e.g. the K-means
  /// phase's distance_kernels_evaluated / distance_kernels_skipped).
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::vector<std::pair<std::string, uint64_t>> counters;
  };

  /// Adds `seconds` to the phase named `name`, creating it if new.
  void Add(const std::string& name, double seconds) {
    FindOrCreate(name).seconds += seconds;
  }

  /// Adds `delta` to counter `counter` of phase `name`, creating either if
  /// new (a counter-only phase carries 0 seconds).
  void AddCount(const std::string& name, const std::string& counter,
                uint64_t delta) {
    Phase& p = FindOrCreate(name);
    for (auto& c : p.counters) {
      if (c.first == counter) {
        c.second += delta;
        return;
      }
    }
    p.counters.emplace_back(counter, delta);
  }

  /// Accumulated value of `counter` on phase `name`; 0 if either is
  /// unknown.
  uint64_t Count(const std::string& name, const std::string& counter) const {
    for (const Phase& p : phases_) {
      if (p.name != name) continue;
      for (const auto& c : p.counters) {
        if (c.first == counter) return c.second;
      }
    }
    return 0;
  }

  /// Accumulated seconds for `name`; 0 if the phase was never recorded.
  double Seconds(const std::string& name) const {
    for (const Phase& p : phases_) {
      if (p.name == name) return p.seconds;
    }
    return 0.0;
  }

  /// Sum over all phases.
  double TotalSeconds() const {
    double total = 0.0;
    for (const Phase& p : phases_) total += p.seconds;
    return total;
  }

  /// All phases in first-recorded order.
  const std::vector<Phase>& phases() const { return phases_; }

  /// Discards all recorded phases.
  void Clear() { phases_.clear(); }

  /// Merges another timer's phases (seconds and counters) into this one.
  void Merge(const PhaseTimer& other) {
    for (const Phase& p : other.phases_) {
      Add(p.name, p.seconds);
      for (const auto& c : p.counters) AddCount(p.name, c.first, c.second);
    }
  }

 private:
  Phase& FindOrCreate(const std::string& name) {
    for (Phase& p : phases_) {
      if (p.name == name) return p;
    }
    phases_.push_back(Phase{name, 0.0, {}});
    return phases_.back();
  }

  std::vector<Phase> phases_;
};

/// RAII helper that adds the scope's wall time to `timer[name]` on exit.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string name)
      : timer_(timer), name_(std::move(name)) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() { timer_->Add(name_, stopwatch_.ElapsedSeconds()); }

 private:
  PhaseTimer* timer_;
  std::string name_;
  WallTimer stopwatch_;
};

}  // namespace hpa

#endif  // HPA_COMMON_TIMER_H_
