#include "common/circuit_breaker.h"

#include "common/checksum.h"

namespace hpa {

namespace {

/// Maps a 64-bit hash to a uniform double in [0, 1) (the fault injector's
/// mapping, reused so rate semantics match).
double ToUnit(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Probe-selection hash: (seed, open-epoch, token) -> stream value. The
/// epoch folds in so each half-open round samples a fresh subset.
uint64_t ProbeHash(uint64_t seed, uint64_t epoch, uint64_t token) {
  uint64_t h = seed ^ (epoch + 1) * 0x9E3779B97F4A7C15ULL;
  h ^= (token + 1) * 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 30;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 27;
  return h;
}

}  // namespace

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  if (options_.failure_threshold < 1) options_.failure_threshold = 1;
  if (options_.half_open_probes < 1) options_.half_open_probes = 1;
  if (options_.half_open_successes < 1) options_.half_open_successes = 1;
  if (options_.open_sec < 0.0) options_.open_sec = 0.0;
}

void CircuitBreaker::TripOpen(double now_sec) {
  state_ = BreakerState::kOpen;
  open_until_sec_ = now_sec + options_.open_sec;
  consecutive_failures_ = 0;
  round_probes_ = 0;
  round_successes_ = 0;
  ++opens_;
}

bool CircuitBreaker::Allow(uint64_t token, double now_sec) {
  if (state_ == BreakerState::kOpen) {
    if (now_sec < open_until_sec_) {
      ++sheds_;
      return false;
    }
    // Window elapsed: start a half-open probing round.
    state_ = BreakerState::kHalfOpen;
    round_probes_ = 0;
    round_successes_ = 0;
    ++half_opens_;
  }
  if (state_ == BreakerState::kHalfOpen) {
    if (round_probes_ >= options_.half_open_probes) {
      ++sheds_;
      return false;
    }
    // Seeded-hash selection: which tokens probe is a pure function of
    // (seed, open epoch, token), not of arrival order.
    if (options_.probe_fraction < 1.0 &&
        ToUnit(ProbeHash(options_.seed, opens_, token)) >=
            options_.probe_fraction) {
      ++sheds_;
      return false;
    }
    ++round_probes_;
    ++probes_admitted_;
    return true;
  }
  return true;  // closed
}

void CircuitBreaker::OnSuccess(double now_sec) {
  (void)now_sec;
  if (state_ == BreakerState::kHalfOpen) {
    ++round_successes_;
    if (round_successes_ >= options_.half_open_successes) {
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      round_probes_ = 0;
      round_successes_ = 0;
      ++closes_;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::OnFailure(double now_sec) {
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately: the dependency is still sick.
    TripOpen(now_sec);
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // outcome raced a trip
  if (++consecutive_failures_ >= options_.failure_threshold) {
    TripOpen(now_sec);
  }
}

}  // namespace hpa
