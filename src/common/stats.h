#ifndef HPA_COMMON_STATS_H_
#define HPA_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Small statistics helpers for the benchmark harnesses: streaming moments
/// (Welford) and exact order statistics over collected samples.

namespace hpa {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm —
/// numerically stable for long runs).
class RunningStats {
 public:
  /// Adds one sample.
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;

  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel-friendly combine).
  void Merge(const RunningStats& other);

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers exact quantile queries. For bench-scale
/// sample counts (<= millions) exactness beats sketching.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  /// Quantile in [0, 1] by linear interpolation between order statistics.
  /// Returns 0 on an empty set.
  double Quantile(double q);

  double Median() { return Quantile(0.5); }

  /// "mean=… stddev=… min=… p50=… p95=… max=…" (for bench logs).
  std::string Summary();

 private:
  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace hpa

#endif  // HPA_COMMON_STATS_H_
