#ifndef HPA_COMMON_STATS_H_
#define HPA_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Small statistics helpers for the benchmark harnesses: streaming moments
/// (Welford) and exact order statistics over collected samples.

namespace hpa {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm —
/// numerically stable for long runs).
class RunningStats {
 public:
  /// Adds one sample.
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;

  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel-friendly combine).
  void Merge(const RunningStats& other);

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket log-scale histogram: O(1) insert, O(buckets) quantile,
/// constant memory, mergeable across workers. Bucket i covers
/// [min_value * growth^i, min_value * growth^(i+1)); values below the
/// first boundary land in bucket 0, values past the last in the final
/// (overflow) bucket. Exact min/max are tracked on the side so the tails
/// never report outside the observed range.
///
/// This is the shared tail-reporting primitive: serve/metrics prices
/// request latencies into it on the executor's (virtual) clock, and the
/// bench JSON tails quote its p50/p95/p99 — so a server scrape and a bench
/// report mean the same thing by construction. Quantiles are a pure
/// function of the bucket counts (rank walk + linear interpolation inside
/// the bucket), so equal sample multisets give equal read-outs regardless
/// of arrival order or worker interleaving.
class LogHistogram {
 public:
  /// Default geometry spans ~1us .. ~5e5s in 64 buckets (growth 1.5x,
  /// ~7% worst-case relative rounding at the bucket midpoint) — wide
  /// enough for both micro-benchmark latencies and whole-run durations.
  explicit LogHistogram(double min_value = 1e-6, double growth = 1.5,
                        size_t buckets = 64);

  /// Adds one sample (negative values clamp to zero => bucket 0).
  void Add(double x);

  /// Folds `other` into this histogram. Geometries must match (same
  /// min_value/growth/bucket count); mismatch is a programming error and
  /// the merge is skipped.
  void Merge(const LogHistogram& other);

  uint64_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

  /// Quantile in [0, 1]: rank walk over the cumulative counts with linear
  /// interpolation inside the containing bucket, clamped to the exact
  /// observed [min, max]. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  /// "n=… mean=… p50=… p95=… p99=… max=…" (for logs and JSON tails).
  std::string Summary() const;

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }

  /// Inclusive lower bound of bucket `i` (0 for bucket 0).
  double BucketLowerBound(size_t i) const;

 private:
  size_t BucketFor(double x) const;

  double min_value_;
  double growth_;
  double inv_log_growth_;
  std::vector<uint64_t> counts_;
  uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples and answers exact quantile queries. For bench-scale
/// sample counts (<= millions) exactness beats sketching.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  /// Quantile in [0, 1] by linear interpolation between order statistics.
  /// Returns 0 on an empty set.
  double Quantile(double q);

  double Median() { return Quantile(0.5); }

  /// "mean=… stddev=… min=… p50=… p95=… max=…" (for bench logs).
  std::string Summary();

 private:
  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace hpa

#endif  // HPA_COMMON_STATS_H_
