#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/checksum.h"
#include "common/string_util.h"

namespace hpa {

std::string_view FaultPolicyName(FaultPolicy policy) {
  switch (policy) {
    case FaultPolicy::kFailFast:
      return "fail-fast";
    case FaultPolicy::kRetryThenSkip:
      return "retry-skip";
  }
  return "unknown";
}

bool ParseFaultPolicy(std::string_view text, FaultPolicy* out) {
  if (text == "fail-fast" || text == "failfast") {
    *out = FaultPolicy::kFailFast;
    return true;
  }
  if (text == "retry-skip" || text == "retry-then-skip") {
    *out = FaultPolicy::kRetryThenSkip;
    return true;
  }
  return false;
}

bool RetryPolicy::IsRetryable(const Status& status) const {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kCorruption;
}

double RetryPolicy::BackoffSeconds(int attempt, uint64_t token) const {
  if (attempt < 0) attempt = 0;
  double nominal =
      initial_backoff_sec * std::pow(backoff_multiplier, attempt);
  nominal = std::min(nominal, max_backoff_sec);
  if (jitter_fraction > 0.0) {
    // Deterministic u in [-1, 1) from (seed, token, attempt): the same
    // request retried in any thread interleaving waits the same time.
    uint64_t mix = seed ^ (token * 0x9E3779B97F4A7C15ULL) ^
                   (static_cast<uint64_t>(attempt) + 1) * 0xBF58476D1CE4E5B9ULL;
    mix ^= mix >> 30;
    mix *= 0x94D049BB133111EBULL;
    mix ^= mix >> 27;
    double u = static_cast<double>(mix >> 11) * 0x1.0p-53;  // [0, 1)
    nominal *= 1.0 + jitter_fraction * (2.0 * u - 1.0);
  }
  return std::max(0.0, std::min(nominal, max_backoff_sec));
}

void QuarantineList::MergeFrom(QuarantineList&& other) {
  retries += other.retries;
  if (entries.empty()) {
    entries = std::move(other.entries);
  } else {
    entries.reserve(entries.size() + other.entries.size());
    for (QuarantineEntry& e : other.entries) entries.push_back(std::move(e));
  }
  other.entries.clear();
  other.retries = 0;
}

void QuarantineList::SortById() {
  std::sort(entries.begin(), entries.end(),
            [](const QuarantineEntry& a, const QuarantineEntry& b) {
              return a.id < b.id;
            });
}

std::string QuarantineList::Summary(size_t max_entries) const {
  if (entries.empty()) return "quarantine: empty";
  std::string out = StrFormat("quarantine: %zu item(s)\n", entries.size());
  size_t shown = std::min(entries.size(), max_entries);
  for (size_t i = 0; i < shown; ++i) {
    out += StrFormat("  %s (%d attempt(s)): %s\n", entries[i].id.c_str(),
                     entries[i].attempts,
                     entries[i].cause.ToString().c_str());
  }
  if (entries.size() > shown) {
    out += StrFormat("  ... and %zu more\n", entries.size() - shown);
  }
  return out;
}

}  // namespace hpa
