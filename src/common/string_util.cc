#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hpa {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) return "-" + HumanDuration(-seconds);
  if (seconds >= 1.0) return StrFormat("%.2f s", seconds);
  if (seconds >= 1e-3) return StrFormat("%.2f ms", seconds * 1e3);
  if (seconds >= 1e-6) return StrFormat("%.2f us", seconds * 1e6);
  return StrFormat("%.0f ns", seconds * 1e9);
}

std::string WithThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i >= lead && (i - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

void AppendDouble(std::string& out, double value) {
  char buf[32];
  // 9 significant digits: enough for any float to round-trip exactly
  // through text (ARFF intermediates must not perturb clustering).
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::general, 9);
  if (ec == std::errc()) {
    out.append(buf, static_cast<size_t>(ptr - buf));
  } else {
    out += std::to_string(value);  // unreachable for finite doubles
  }
}

void AppendUint(std::string& out, uint64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // cannot fail for a 24-byte buffer
  out.append(buf, static_cast<size_t>(ptr - buf));
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace hpa
