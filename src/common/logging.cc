#include "common/logging.h"

#include <atomic>

namespace hpa {
namespace log_internal {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
}  // namespace

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace log_internal
}  // namespace hpa
