#ifndef HPA_COMMON_CHECKSUM_H_
#define HPA_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string_view>

/// \file
/// Data-integrity primitives for the storage layer: a CRC-32 used to
/// checksum sharded-ARFF shards and packed-corpus document bodies, and a
/// stable 64-bit string hash used to derive deterministic per-request
/// fault/jitter decisions. Both are fixed algorithms (not std::hash), so
/// checksums embedded in files and seed-driven fault schedules are
/// identical across platforms and standard libraries.

namespace hpa {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
///
/// Streaming use: pass the previous return value as `crc` to extend the
/// checksum, i.e. `Crc32(b, Crc32(a)) == Crc32(ab)`. The empty-prefix CRC
/// is 0.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

/// Stable 64-bit FNV-1a hash of `data`, mixed with `seed`. Never changes
/// across versions (fault-injection schedules depend on it).
uint64_t StableHash64(std::string_view data, uint64_t seed = 0);

}  // namespace hpa

#endif  // HPA_COMMON_CHECKSUM_H_
