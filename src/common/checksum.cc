#include "common/checksum.h"

#include <array>

namespace hpa {

namespace {

/// Table for the reflected IEEE polynomial, built once at startup.
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t StableHash64(std::string_view data, uint64_t seed) {
  // FNV-1a with the seed folded into the offset basis, then finalized with
  // a SplitMix64-style avalanche so nearby seeds decorrelate.
  uint64_t h = 0xCBF29CE484222325ULL ^ seed;
  for (unsigned char byte : data) {
    h ^= byte;
    h *= 0x100000001B3ULL;
  }
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace hpa
