#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace hpa {

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combine.
  double delta = other.mean_ - mean_;
  uint64_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

void SampleSet::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Quantile(double q) {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string SampleSet::Summary() {
  RunningStats stats;
  for (double s : samples_) stats.Add(s);
  return StrFormat("n=%llu mean=%.6g stddev=%.6g min=%.6g p50=%.6g "
                   "p95=%.6g max=%.6g",
                   static_cast<unsigned long long>(stats.count()),
                   stats.mean(), stats.stddev(), stats.min(), Quantile(0.5),
                   Quantile(0.95), stats.max());
}

}  // namespace hpa
