#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace hpa {

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combine.
  double delta = other.mean_ - mean_;
  uint64_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

LogHistogram::LogHistogram(double min_value, double growth, size_t buckets)
    : min_value_(min_value > 0.0 ? min_value : 1e-9),
      growth_(growth > 1.0 ? growth : 1.5),
      inv_log_growth_(1.0 / std::log(growth > 1.0 ? growth : 1.5)),
      counts_(buckets < 2 ? 2 : buckets, 0) {}

size_t LogHistogram::BucketFor(double x) const {
  if (!(x > min_value_)) return 0;
  double b = std::log(x / min_value_) * inv_log_growth_;
  size_t i = static_cast<size_t>(b) + 1;
  return i < counts_.size() ? i : counts_.size() - 1;
}

double LogHistogram::BucketLowerBound(size_t i) const {
  if (i == 0) return 0.0;
  return min_value_ * std::pow(growth_, static_cast<double>(i - 1));
}

void LogHistogram::Add(double x) {
  if (x < 0.0) x = 0.0;
  ++counts_[BucketFor(x)];
  if (n_ == 0 || x < min_) min_ = x;
  if (n_ == 0 || x > max_) max_ = x;
  sum_ += x;
  ++n_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.n_ == 0) return;
  if (counts_.size() != other.counts_.size() ||
      min_value_ != other.min_value_ || growth_ != other.growth_) {
    return;  // geometry mismatch: refuse rather than mis-bucket
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (n_ == 0 || other.min_ < min_) min_ = other.min_;
  if (n_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  n_ += other.n_;
}

double LogHistogram::Quantile(double q) const {
  if (n_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Target rank in [1, n]; walk the cumulative counts to its bucket.
  double rank = q * static_cast<double>(n_);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    double lo = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) >= rank) {
      // Interpolate linearly inside the bucket by rank fraction.
      double frac = (rank - lo) / static_cast<double>(counts_[i]);
      double lower = BucketLowerBound(i);
      double upper = i + 1 < counts_.size()
                         ? BucketLowerBound(i + 1)
                         : max_;  // overflow bucket: cap at observed max
      double v = lower + (upper - lower) * frac;
      return std::min(std::max(v, min_), max_);
    }
  }
  return max_;
}

std::string LogHistogram::Summary() const {
  return StrFormat("n=%llu mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g",
                   static_cast<unsigned long long>(n_), mean(),
                   Quantile(0.5), Quantile(0.95), Quantile(0.99), max());
}

void SampleSet::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Quantile(double q) {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string SampleSet::Summary() {
  RunningStats stats;
  for (double s : samples_) stats.Add(s);
  return StrFormat("n=%llu mean=%.6g stddev=%.6g min=%.6g p50=%.6g "
                   "p95=%.6g max=%.6g",
                   static_cast<unsigned long long>(stats.count()),
                   stats.mean(), stats.stddev(), stats.min(), Quantile(0.5),
                   Quantile(0.95), stats.max());
}

}  // namespace hpa
