#ifndef HPA_COMMON_STRING_UTIL_H_
#define HPA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Small string helpers shared across the library, benches and examples.

namespace hpa {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// ASCII lowercase copy of `s`.
std::string ToLowerAscii(std::string_view s);

/// "1.5 KiB", "62.8 MiB", ... with one decimal.
std::string HumanBytes(uint64_t bytes);

/// "123 ms", "4.21 s", "2.5 us", ... with sensible units.
std::string HumanDuration(double seconds);

/// Thousands-separated integer: 1234567 -> "1,234,567".
std::string WithThousands(uint64_t value);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Appends `value` to `out` in general form with 9 significant digits
/// (std::to_chars; several times faster than snprintf — this matters in
/// the serial ARFF output phase). 9 digits make float-valued doubles
/// round-trip exactly through text.
void AppendDouble(std::string& out, double value);

/// Appends `value` in base 10.
void AppendUint(std::string& out, uint64_t value);

/// Parses a base-10 signed integer. Returns false on any non-numeric input,
/// overflow, or trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a floating-point value. Returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace hpa

#endif  // HPA_COMMON_STRING_UTIL_H_
