#ifndef HPA_PARALLEL_THREAD_POOL_H_
#define HPA_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/executor.h"

/// \file
/// Real-thread executor: a persistent pool with dynamic self-scheduling of
/// parallel-loop chunks, the execution model of a Cilk-style `cilk_for`.

namespace hpa::parallel {

/// Executor backed by `workers` OS threads created at construction and
/// joined at destruction. Parallel loops are self-scheduled: workers grab
/// the next chunk with an atomic fetch-add, which balances skewed
/// per-document costs the same way the paper's runtime does.
///
/// The calling thread does not execute chunks itself; it blocks until the
/// region completes. Worker indices passed to bodies are stable per pool
/// thread, so worker-indexed scratch (e.g. per-worker K-means accumulators)
/// is race-free.
class ThreadPoolExecutor : public Executor {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPoolExecutor(int workers);

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  ~ThreadPoolExecutor() override;

  int num_workers() const override { return static_cast<int>(threads_.size()); }
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, const RangeBody& body) override;
  void RunSerial(const WorkHint& hint,
                 const std::function<void()>& fn) override;
  void ChargeIoTime(double seconds, int channels) override;
  double Now() const override;
  const char* name() const override { return "threads"; }

 private:
  struct Job {
    const RangeBody* body = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    std::atomic<size_t> next_chunk{0};
    size_t num_chunks = 0;
    std::atomic<size_t> chunks_done{0};
  };

  void WorkerLoop(int worker_index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Job* current_job_ = nullptr;  // guarded by mu_ for publication
  uint64_t job_sequence_ = 0;   // bumped per job; wakes workers
  int workers_inside_ = 0;      // workers holding a pointer to current_job_
  bool shutting_down_ = false;

  double start_time_;
  std::atomic<int64_t> charged_io_nanos_{0};
};

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_THREAD_POOL_H_
