#ifndef HPA_PARALLEL_THREAD_POOL_H_
#define HPA_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/executor.h"

/// \file
/// Real-thread executor: a persistent pool whose workers own Chase-Lev
/// work-stealing deques — the execution model of the Cilkplus runtime the
/// paper's operators were written for. Owners push and pop tasks LIFO
/// (depth-first, cache-warm); idle workers steal FIFO from the opposite
/// end (breadth-first, the oldest and therefore largest splits).

namespace hpa::parallel {

/// Executor backed by `workers` OS threads created at construction and
/// joined at destruction. A parallel loop becomes one root task covering
/// the whole grain-aligned chunk range; executing a task repeatedly splits
/// off its upper half as a stealable sibling until a single chunk remains,
/// so skewed per-chunk costs rebalance exactly as they do under randomized
/// work stealing.
///
/// Nested parallelism: a chunk body may call ParallelFor again. The
/// spawning worker seeds its own deque with the sub-region's root task and
/// then *helps*: it pops (or steals) tasks until the sub-region drains, so
/// a blocked join never idles a worker. Cancellation is region-scoped —
/// see Executor::RequestStop.
///
/// Root regions must come from one non-pool thread at a time (the old flat
/// contract). A second non-pool thread submitting mid-region aborts with a
/// diagnostic rather than deadlocking. The submitting thread does not
/// execute chunks itself; worker indices passed to bodies are stable per
/// pool thread, so worker-indexed scratch (e.g. per-worker K-means
/// accumulators) is race-free.
class ThreadPoolExecutor : public Executor {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPoolExecutor(int workers);

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  ~ThreadPoolExecutor() override;

  int num_workers() const override { return static_cast<int>(threads_.size()); }
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, const RangeBody& body) override;
  void RunSerial(const WorkHint& hint,
                 const std::function<void()>& fn) override;
  void ChargeIoTime(double seconds, int channels) override;
  double Now() const override;
  const char* name() const override { return "threads"; }
  SchedulerStats scheduler_stats() const override;
  void RequestStop() override;
  bool stop_requested() const override;

  /// Total simulated device time charged so far, in seconds. Exposed so
  /// tests can pin down the accumulator's rounding behaviour (many tiny
  /// charges must not vanish to truncation) without wall-clock noise.
  double charged_io_seconds() const;

  /// Steal-half thief policy (off by default, which is the classic
  /// steal-one Chase-Lev behaviour): when a steal sweep hits a non-empty
  /// victim, the thief takes up to half of the victim's visible tasks —
  /// each via the same single-CAS Steal() primitive — keeps the first and
  /// pushes the rest onto its own deque. Deep spawn trees (nested
  /// fork/join) pile many region roots onto one deque; migrating half of
  /// them at once spreads that backlog in O(log P) sweeps instead of one
  /// steal per task. Schedule-only: chunk boundaries and results are
  /// unchanged. Set it between regions, like set_inline_threshold.
  void set_steal_half(bool on) {
    steal_half_.store(on, std::memory_order_relaxed);
  }
  bool steal_half() const {
    return steal_half_.load(std::memory_order_relaxed);
  }

 private:
  struct Region;
  struct Task;
  class Deque;

  /// One parallel region (root or nested). Lives on the stack of the
  /// submitting/spawning thread for the duration of the ParallelFor call.
  struct Region {
    const RangeBody* body = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    /// Tasks created but not yet completed; the region is done at 0.
    std::atomic<size_t> tasks_outstanding{0};
    /// Region-scoped cancellation flag (see StopRequested()).
    std::atomic<bool> stop{false};
    /// Enclosing region of the spawning task, nullptr for root regions.
    Region* parent = nullptr;
    /// Nesting depth, 1 for root regions.
    uint32_t depth = 1;
    /// Root regions signal done_cv_; nested joins spin-help instead.
    bool notify_on_done = false;

    /// True if this region or any ancestor was asked to stop.
    bool StopRequested() const {
      for (const Region* r = this; r != nullptr; r = r->parent) {
        if (r->stop.load(std::memory_order_acquire)) return true;
      }
      return false;
    }
  };

  /// A stealable unit: a contiguous range of grain-aligned chunks of one
  /// region. Heap-allocated; freed by whichever worker executes it.
  struct Task {
    Region* region;
    size_t chunk_begin;
    size_t chunk_end;
  };

  /// Per-worker mutable state, cache-line separated.
  struct alignas(64) WorkerState {
    std::unique_ptr<Deque> deque;
    std::atomic<uint64_t> executed{0};  // chunks run on this worker
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> spawned{0};
    std::atomic<uint64_t> suppressed{0};  // chunks run inline (no spawn)
    std::atomic<uint64_t> batch_stolen{0};  // extra tasks from steal-half
  };

  /// Innermost region whose task this thread is currently executing; used
  /// to parent nested regions and to scope RequestStop(). Per-thread, not
  /// per-pool: a thread runs tasks of exactly one pool.
  static thread_local Region* tl_current_region_;

  void WorkerLoop(int worker);
  /// Executes one task: splits it down to a single chunk (spawning
  /// stealable right halves), runs the body unless cancelled, completes.
  void RunTask(Task* task, int worker);
  /// Own deque -> injection queue -> steal sweep. Null when empty-handed.
  Task* FindWork(int worker);
  /// Creates and enqueues the root task of `region`, sized `num_chunks`.
  void SeedRegion(Region* region, size_t num_chunks, int worker);
  /// Help-first join: execute/steal tasks until `region` drains.
  void JoinAsWorker(Region* region, int worker);
  void CompleteTask(Region* region);

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;  // workers sleep here between regions
  std::condition_variable done_cv_;  // root submitters wait here
  std::deque<Task*> injected_;       // root tasks, guarded by mu_
  bool shutting_down_ = false;       // guarded by mu_

  std::atomic<bool> steal_half_{false};
  std::atomic<int> active_regions_{0};
  std::atomic<bool> external_active_{false};  // one root submitter at a time
  std::atomic<Region*> root_region_{nullptr};
  std::atomic<bool> pending_stop_{false};  // RequestStop outside any region

  /// Runs `region`'s chunks inline on the calling thread as `worker` (the
  /// depth-bounded fallback; no tasks are pushed, nothing is stealable).
  void RunRegionInline(Region* region, int worker);

  std::atomic<uint64_t> regions_{0};
  std::atomic<uint64_t> max_depth_{0};
  /// Chunks suppressed by inline root regions run on non-pool threads
  /// (which have no WorkerState slot of their own).
  std::atomic<uint64_t> suppressed_external_{0};

  double start_time_;
  std::atomic<int64_t> charged_io_picos_{0};
};

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_THREAD_POOL_H_
