#include "parallel/machine_model.h"

#include <atomic>

#include "common/timer.h"

namespace hpa::parallel {

MachineModel MachineModel::Calibrate() {
  MachineModel model = Default();

  // Estimate per-task dispatch cost with a tight loop of tiny "tasks"
  // (an atomic bump approximates the fetch-add a self-scheduled loop pays
  // per chunk, plus function-call overhead through std::function).
  constexpr int kTasks = 200000;
  std::atomic<uint64_t> sink{0};
  volatile uint64_t guard = 0;
  WallTimer timer;
  for (int i = 0; i < kTasks; ++i) {
    sink.fetch_add(1, std::memory_order_relaxed);
    guard = guard + sink.load(std::memory_order_relaxed);
  }
  double per_task = timer.ElapsedSeconds() / kTasks;
  // The measured lower bound plus a fixed allowance for wakeup/steal costs
  // a calibration loop cannot observe.
  model.spawn_overhead_sec = per_task + 0.5e-6;
  return model;
}

}  // namespace hpa::parallel
