#ifndef HPA_PARALLEL_PARALLEL_OPS_H_
#define HPA_PARALLEL_PARALLEL_OPS_H_

#include <cstddef>
#include <vector>

#include "parallel/executor.h"

/// \file
/// Higher-order parallel primitives built on `Executor`: reductions and
/// worker-indexed scratch. These mirror the patterns the paper's operators
/// use (per-worker accumulators merged after a parallel loop).

namespace hpa::parallel {

/// Parallel reduction over [begin, end).
///
/// `map` folds a chunk [b, e) into a worker-local accumulator of type `Acc`;
/// `combine` merges a worker accumulator into the result. Accumulators are
/// default-constructed, one per worker, and merged serially in worker order
/// (deterministic for commutative combines; callers needing bit-exact
/// floating-point sums should use a fixed grain).
///
/// \code
///   uint64_t total = ParallelReduce<uint64_t>(
///       exec, 0, docs.size(), /*grain=*/0, hint,
///       [&](uint64_t& acc, size_t b, size_t e) {
///         for (size_t i = b; i < e; ++i) acc += docs[i].tokens;
///       },
///       [](uint64_t& into, const uint64_t& from) { into += from; });
/// \endcode
template <typename Acc, typename MapFn, typename CombineFn>
Acc ParallelReduce(Executor& exec, size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, MapFn map, CombineFn combine) {
  std::vector<Acc> partials(static_cast<size_t>(exec.num_workers()));
  exec.ParallelFor(begin, end, grain, hint,
                   [&](int worker, size_t b, size_t e) {
                     map(partials[static_cast<size_t>(worker)], b, e);
                   });
  Acc result{};
  for (Acc& p : partials) combine(result, p);
  return result;
}

/// Per-worker scratch storage sized to an executor's worker count.
///
/// Hands each parallel-loop chunk a stable, race-free slot. The typical HPA
/// pattern — allocate once, recycle across iterations (the paper's
/// "no new objects during K-means iterations") — looks like:
///
/// \code
///   WorkerLocal<Accumulators> scratch(exec, [&] { return MakeAcc(); });
///   for (int iter = 0; iter < n; ++iter) {
///     scratch.ForEach([](Accumulators& a) { a.Reset(); });
///     exec.ParallelFor(..., [&](int w, size_t b, size_t e) {
///       Accumulate(scratch.Get(w), b, e);
///     });
///     Merge(scratch);
///   }
/// \endcode
template <typename T>
class WorkerLocal {
 public:
  /// Creates one `T` per worker via `factory`.
  template <typename Factory>
  WorkerLocal(const Executor& exec, Factory factory) {
    slots_.reserve(static_cast<size_t>(exec.num_workers()));
    for (int i = 0; i < exec.num_workers(); ++i) slots_.push_back(factory());
  }

  /// Creates one default-constructed `T` per worker.
  explicit WorkerLocal(const Executor& exec)
      : slots_(static_cast<size_t>(exec.num_workers())) {}

  T& Get(int worker) { return slots_[static_cast<size_t>(worker)]; }
  const T& Get(int worker) const { return slots_[static_cast<size_t>(worker)]; }

  size_t size() const { return slots_.size(); }

  /// Applies `fn` to every slot (serially, on the calling thread).
  template <typename Fn>
  void ForEach(Fn fn) {
    for (T& slot : slots_) fn(slot);
  }

 private:
  std::vector<T> slots_;
};

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_PARALLEL_OPS_H_
