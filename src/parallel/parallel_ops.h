#ifndef HPA_PARALLEL_PARALLEL_OPS_H_
#define HPA_PARALLEL_PARALLEL_OPS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "parallel/executor.h"

/// \file
/// Higher-order parallel primitives built on `Executor`: reductions and
/// worker-indexed scratch. These mirror the patterns the paper's operators
/// use (per-worker accumulators merged after a parallel loop).

namespace hpa::parallel {

/// Deterministic first-error capture for fail-fast parallel loops.
///
/// Each worker records at most one error into its own slot (no locks); the
/// recording worker also requests cooperative cancellation so pending
/// chunks are skipped. After the loop, `First()` picks the error from the
/// lowest worker slot — a stable choice, though which errors were recorded
/// at all can depend on chunk timing under real threads.
class FirstError {
 public:
  explicit FirstError(const Executor& exec)
      : slots_(static_cast<size_t>(exec.num_workers())) {}

  /// Records `status` into `worker`'s slot (first error wins per worker)
  /// and cancels the remaining chunks of the current region.
  void Record(Executor& exec, int worker, Status status) {
    if (status.ok()) return;
    Status& slot = slots_[static_cast<size_t>(worker)];
    if (slot.ok()) slot = std::move(status);
    exec.RequestStop();
  }

  /// The recorded error from the lowest worker slot, or OK if none.
  Status First() const {
    for (const Status& s : slots_) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  bool ok() const { return First().ok(); }

 private:
  std::vector<Status> slots_;
};

/// Parallel reduction over [begin, end).
///
/// `map` folds a chunk [b, e) into a worker-local accumulator of type `Acc`;
/// `combine` merges a worker accumulator into the result. Accumulators are
/// default-constructed, one per worker, and merged serially in worker order
/// (deterministic for commutative combines; callers needing bit-exact
/// floating-point sums should use a fixed grain).
///
/// \code
///   uint64_t total = ParallelReduce<uint64_t>(
///       exec, 0, docs.size(), /*grain=*/0, hint,
///       [&](uint64_t& acc, size_t b, size_t e) {
///         for (size_t i = b; i < e; ++i) acc += docs[i].tokens;
///       },
///       [](uint64_t& into, const uint64_t& from) { into += from; });
/// \endcode
template <typename Acc, typename MapFn, typename CombineFn>
Acc ParallelReduce(Executor& exec, size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, MapFn map, CombineFn combine) {
  std::vector<Acc> partials(static_cast<size_t>(exec.num_workers()));
  exec.ParallelFor(begin, end, grain, hint,
                   [&](int worker, size_t b, size_t e) {
                     map(partials[static_cast<size_t>(worker)], b, e);
                   });
  Acc result{};
  for (Acc& p : partials) combine(result, p);
  return result;
}

/// Per-worker scratch storage sized to an executor's worker count.
///
/// Hands each parallel-loop chunk a stable, race-free slot. The typical HPA
/// pattern — allocate once, recycle across iterations (the paper's
/// "no new objects during K-means iterations") — looks like:
///
/// \code
///   WorkerLocal<Accumulators> scratch(exec, [&] { return MakeAcc(); });
///   for (int iter = 0; iter < n; ++iter) {
///     scratch.ForEach([](Accumulators& a) { a.Reset(); });
///     exec.ParallelFor(..., [&](int w, size_t b, size_t e) {
///       Accumulate(scratch.Get(w), b, e);
///     });
///     Merge(scratch);
///   }
/// \endcode
template <typename T>
class WorkerLocal {
 public:
  /// Creates one `T` per worker via `factory`.
  template <typename Factory>
  WorkerLocal(const Executor& exec, Factory factory) {
    slots_.reserve(static_cast<size_t>(exec.num_workers()));
    for (int i = 0; i < exec.num_workers(); ++i) slots_.push_back(factory());
  }

  /// Creates one default-constructed `T` per worker.
  explicit WorkerLocal(const Executor& exec)
      : slots_(static_cast<size_t>(exec.num_workers())) {}

  T& Get(int worker) { return slots_[static_cast<size_t>(worker)]; }
  const T& Get(int worker) const { return slots_[static_cast<size_t>(worker)]; }

  size_t size() const { return slots_.size(); }

  /// Applies `fn` to every slot (serially, on the calling thread).
  template <typename Fn>
  void ForEach(Fn fn) {
    for (T& slot : slots_) fn(slot);
  }

 private:
  std::vector<T> slots_;
};

/// Merges a contiguous shard range from all partial sharded dictionaries
/// into `out`. Shard-major, then partials in slot order — the one merge
/// order both the serial and the parallel paths use, so their results are
/// byte-identical. `merge(out_shard, key, value)` folds one entry.
///
/// Shared by ParallelShardedMerge (each task gets a disjoint shard range)
/// and by callers that want the serial ablation path (one call covering
/// [0, num_shards) under RunSerial).
template <typename Sharded, typename MergeFn>
void MergeShardRange(WorkerLocal<Sharded>& partials, Sharded& out,
                     size_t shard_begin, size_t shard_end, MergeFn merge) {
  for (size_t s = shard_begin; s < shard_end; ++s) {
    auto& dst = out.shard(s);
    for (size_t w = 0; w < partials.size(); ++w) {
      partials.Get(static_cast<int>(w))
          .shard(s)
          .ForEach([&](const auto& key, const auto& value) {
            merge(dst, key, value);
          });
    }
  }
}

/// Parallel hash-partitioned merge: the second parallel loop of a sharded
/// reduction. Every per-worker partial dictionary is partitioned into the
/// same S shards as `out` (see containers::ShardedDict); shard s of the
/// result is produced by exactly one task that reads shard s of *all*
/// partials. Tasks therefore write disjoint shards — race-free by
/// construction, no locks or atomics — and the merge runs at O(keys / S)
/// critical path instead of the serial O(keys).
///
/// Requirements: `out.num_shards() == partials.Get(w).num_shards()` for
/// every w, and all dictionaries were populated with the same key routing
/// (automatic when they are the same ShardedDict instantiation).
///
/// Results are independent of the worker count: the shard count is a fixed
/// property of the container, each shard is merged in slot order, and the
/// chunking of shards across workers never splits a shard.
template <typename Sharded, typename MergeFn>
void ParallelShardedMerge(Executor& exec, WorkerLocal<Sharded>& partials,
                          Sharded& out, const WorkHint& hint, MergeFn merge) {
  exec.ParallelFor(0, out.num_shards(), 0, hint,
                   [&](int /*worker*/, size_t b, size_t e) {
                     MergeShardRange(partials, out, b, e, merge);
                   });
}

/// Flat (barrier-per-round) pairwise tree reduction over the slots of a
/// WorkerLocal: round r combines pairs at stride 2^r, and every round is one
/// ParallelFor — all pair-combines of a round must finish before any combine
/// of the next round starts. Kept as the ablation baseline for the
/// work-stealing `ParallelTreeReduce` below, which runs the *same* combines
/// in the same per-slot order without the inter-round barrier.
///
/// `combine(into, from, part, parts)` must fold slice `part` (of `parts`
/// disjoint slices) of `from` into the same slice of `into`; slices of one
/// pair run as independent tasks. Pass `parts == 1` for indivisible
/// accumulators. `hint.bytes_touched` describes ONE pair combine; each
/// round's hint is scaled by the number of pairs in that round.
template <typename T, typename CombineFn>
void ParallelTreeReduceFlat(Executor& exec, WorkerLocal<T>& slots,
                            size_t parts, const WorkHint& hint,
                            CombineFn combine) {
  if (parts == 0) parts = 1;
  const size_t n = slots.size();
  for (size_t stride = 1; stride < n; stride *= 2) {
    const size_t step = 2 * stride;
    size_t pairs = 0;
    for (size_t i = 0; i + stride < n; i += step) ++pairs;
    if (pairs == 0) continue;
    WorkHint round_hint = hint;
    round_hint.bytes_touched = hint.bytes_touched * pairs;
    exec.ParallelFor(
        0, pairs * parts, 0, round_hint,
        [&](int /*worker*/, size_t b, size_t e) {
          for (size_t task = b; task < e; ++task) {
            const size_t pair = task / parts;
            const size_t part = task % parts;
            T& into = slots.Get(static_cast<int>(pair * step));
            T& from = slots.Get(static_cast<int>(pair * step + stride));
            combine(into, from, part, parts);
          }
        });
  }
}

namespace detail {

/// Recursive fork/join reduction of slots [lo, lo+n): both halves reduce as
/// sibling tasks of a nested region, then the right root folds into the
/// left root. The split point is the largest power of two below n, which
/// makes the set of pair-combines — and the order each destination slot
/// receives them — identical to the strided schedule of
/// ParallelTreeReduceFlat, so results are bit-exact across the two.
template <typename T, typename CombineFn>
void TreeReduceRange(Executor& exec, WorkerLocal<T>& slots, size_t lo,
                     size_t n, size_t parts, const WorkHint& hint,
                     CombineFn& combine) {
  if (n <= 1) return;
  size_t split = 1;
  while (split * 2 < n) split *= 2;
  if (split > 1 || n - split > 1) {
    // Fork: each half's interior combines start as soon as its own inputs
    // are ready — no barrier against the other half. The spawn region
    // carries no bytes hint of its own; nested combine regions price their
    // own traffic.
    WorkHint spawn_hint;
    spawn_hint.label = hint.label;
    exec.ParallelFor(0, 2, 1, spawn_hint, [&](int, size_t b, size_t e) {
      for (size_t side = b; side < e; ++side) {
        if (side == 0) {
          TreeReduceRange(exec, slots, lo, split, parts, hint, combine);
        } else {
          TreeReduceRange(exec, slots, lo + split, n - split, parts, hint,
                          combine);
        }
      }
    });
  }
  // Join: both halves reduced; fold the right root into the left root,
  // slices in parallel when the accumulator is divisible.
  T& into = slots.Get(static_cast<int>(lo));
  T& from = slots.Get(static_cast<int>(lo + split));
  if (parts <= 1) {
    combine(into, from, 0, 1);
  } else {
    exec.ParallelFor(0, parts, 1, hint, [&](int, size_t b, size_t e) {
      for (size_t part = b; part < e; ++part) combine(into, from, part, parts);
    });
  }
}

}  // namespace detail

/// In-place pairwise tree reduction over the slots of a WorkerLocal — the
/// merge schedule of a Cilk reducer hyperobject, run as a nested fork/join
/// spawn tree: a pair-combine starts the moment its two inputs are ready,
/// instead of barriering after every stride like ParallelTreeReduceFlat.
/// After the call, slot 0 holds the reduction of all slots; other slots are
/// consumed.
///
/// `combine(into, from, part, parts)` must fold slice `part` (of `parts`
/// disjoint slices) of `from` into the same slice of `into`; slices of one
/// pair run as independent tasks, so a single pair combine — including the
/// final root combine, which a plain pairwise tree leaves serial — can use
/// every worker. Pass `parts == 1` for indivisible accumulators.
/// `hint.bytes_touched` describes ONE pair combine.
///
/// Performs exactly the same combines in the same per-destination order as
/// the flat version (both follow the binary-counter schedule: slot 0
/// receives slots 1, 2, 4, ... in sequence), so the two are bit-identical —
/// only the schedule differs. Critical path is
/// O(log W * cost(combine)/min(W, parts)) without the per-round
/// straggler wait the barrier adds.
template <typename T, typename CombineFn>
void ParallelTreeReduce(Executor& exec, WorkerLocal<T>& slots, size_t parts,
                        const WorkHint& hint, CombineFn combine) {
  if (parts == 0) parts = 1;
  detail::TreeReduceRange(exec, slots, 0, slots.size(), parts, hint, combine);
}

/// Tree-structured overload of ParallelReduce: same map phase, but the
/// per-worker partials are combined pairwise in log2(W) parallel rounds
/// instead of a serial fold on the calling thread. `combine` has the same
/// `(into, from)` signature as ParallelReduce's. Prefer this when the
/// accumulator is large (dictionaries, centroid sums) and W is high — the
/// serial fold is exactly the Amdahl term that flattens scalability.
template <typename Acc, typename MapFn, typename CombineFn>
Acc ParallelTreeReduce(Executor& exec, size_t begin, size_t end, size_t grain,
                       const WorkHint& hint, MapFn map, CombineFn combine) {
  WorkerLocal<Acc> partials(exec);
  exec.ParallelFor(begin, end, grain, hint,
                   [&](int worker, size_t b, size_t e) {
                     map(partials.Get(worker), b, e);
                   });
  ParallelTreeReduce(
      exec, partials, 1, hint,
      [&](Acc& into, Acc& from, size_t /*part*/, size_t /*parts*/) {
        combine(into, from);
      });
  Acc result{};
  combine(result, partials.Get(0));
  return result;
}

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_PARALLEL_OPS_H_
