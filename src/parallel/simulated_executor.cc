#include "parallel/simulated_executor.h"

#include <algorithm>

namespace hpa::parallel {

SimulatedExecutor::SimulatedExecutor(int workers, const MachineModel& model)
    : workers_(workers < 1 ? 1 : workers),
      model_(model),
      avail_(static_cast<size_t>(workers_), 0.0) {
  stats_.per_worker_tasks.assign(static_cast<size_t>(workers_), 0);
}

void SimulatedExecutor::ParallelFor(size_t begin, size_t end, size_t grain,
                                    const WorkHint& hint,
                                    const RangeBody& body) {
  if (begin >= end) return;
  if (grain == 0) grain = AutoGrain(end - begin);
  if (inline_threshold_ > 0 && end - begin <= inline_threshold_) {
    InlineRegion(begin, end, grain, hint, body);
    return;
  }

  RegionFrame fr;
  if (!chunk_stack_.empty()) {
    // Nested region: the spawning chunk suspends at its current virtual
    // position. Fold its running CPU segment, then free its worker — a
    // joining worker helps run the sub-region instead of idling.
    ChunkFrame& pc = chunk_stack_.back();
    pc.cpu += pc.timer.ElapsedSeconds();
    fr.ready = pc.start + pc.cpu + pc.wait;
    fr.parent_worker = pc.worker;
    avail_[static_cast<size_t>(pc.worker)] = fr.ready;
  } else {
    fr.ready = virtual_now_;
    fr.parent_worker = 0;
  }
  fr.finish_max = fr.ready;
  region_stack_.push_back(fr);
  stops_.EnterRegion();
  ++stats_.regions;
  stats_.max_task_depth =
      std::max<uint64_t>(stats_.max_task_depth, region_stack_.size());

  double serial_cpu = 0.0;
  size_t num_chunks = 0;

  for (size_t b = begin; b < end; b += grain) {
    if (stops_.StopRequested()) break;
    size_t e = b + grain < end ? b + grain : end;

    // Greedy earliest-start assignment over the *shared* worker timeline:
    // the chunk goes to whichever worker frees up first (never before the
    // region is ready) — the placement a work-stealing loop converges to.
    RegionFrame& rf = region_stack_.back();
    size_t w = 0;
    double best = std::max(avail_[0], rf.ready);
    for (size_t i = 1; i < avail_.size(); ++i) {
      double t = std::max(avail_[i], rf.ready);
      if (t < best) {
        best = t;
        w = i;
      }
    }

    {
      ChunkFrame cf;
      cf.worker = static_cast<int>(w);
      cf.start = best + model_.spawn_overhead_sec;
      chunk_stack_.push_back(cf);
    }
    chunk_stack_.back().timer.Restart();
    body(static_cast<int>(w), b, e);
    // Re-resolve: a nested ParallelFor inside the body grows chunk_stack_,
    // which may reallocate and invalidate any reference taken before it.
    ChunkFrame& cf = chunk_stack_.back();
    cf.cpu += cf.timer.ElapsedSeconds();
    double finish = cf.start + cf.cpu + cf.wait;
    serial_cpu += cf.cpu;

    ++stats_.tasks_spawned;
    ++stats_.per_worker_tasks[w];
    if (static_cast<int>(w) != region_stack_.back().parent_worker) {
      ++stats_.steals;  // modelled steal: ran away from the spawning worker
    }
    if (trace_ != nullptr) {
      trace_->Add(hint.label[0] != '\0' ? hint.label : "parallel-for",
                  cf.start, cf.cpu + cf.wait, static_cast<int>(w));
    }
    chunk_stack_.pop_back();

    RegionFrame& rf2 = region_stack_.back();
    avail_[w] = finish;
    rf2.finish_max = std::max(rf2.finish_max, finish);
    ++num_chunks;
  }

  RegionFrame done = region_stack_.back();
  region_stack_.pop_back();
  stops_.ExitRegion();

  double makespan = done.finish_max - done.ready;

  // Roofline: all P workers together cannot stream more than the machine's
  // bandwidth ceiling; a subset of workers reaches a proportional share.
  // The bound is clamped to the serial time so a 1-worker run is never
  // penalized relative to its own measurement.
  double bw_share = std::min(
      1.0, static_cast<double>(workers_) * model_.per_worker_bandwidth_fraction);
  double bandwidth_seconds = 0.0;
  if (hint.bytes_touched > 0 && model_.mem_bandwidth_bytes_per_sec > 0) {
    bandwidth_seconds = static_cast<double>(hint.bytes_touched) /
                        (model_.mem_bandwidth_bytes_per_sec * bw_share);
    bandwidth_seconds = std::min(bandwidth_seconds, serial_cpu);
  }

  // Device capacity: I/O issued inside the region can overlap across
  // workers, but not beyond the device's channel count.
  double io_bound =
      done.io_seconds / static_cast<double>(std::max(1, done.io_channels));

  double charged = std::max({makespan, bandwidth_seconds, io_bound});
  double region_end = done.ready + charged;

  last_region_ = RegionStats{};
  last_region_.serial_cpu_seconds = serial_cpu;
  last_region_.makespan_seconds = makespan;
  last_region_.bandwidth_seconds = bandwidth_seconds;
  last_region_.io_seconds = io_bound;
  last_region_.charged_seconds = charged;
  last_region_.num_chunks = num_chunks;
  last_region_.bandwidth_bound = bandwidth_seconds > makespan;

  if (!chunk_stack_.empty()) {
    // Resume the spawning chunk at the sub-region's end: the join gap
    // counts as wait (not CPU), and the parent re-occupies its worker.
    ChunkFrame& pc = chunk_stack_.back();
    pc.wait += region_end - (pc.start + pc.cpu + pc.wait);
    avail_[static_cast<size_t>(pc.worker)] = region_end;
    pc.timer.Restart();
  } else {
    virtual_now_ = region_end;
    total_parallel_ += charged;
  }
}

void SimulatedExecutor::InlineRegion(size_t begin, size_t end, size_t grain,
                                     const WorkHint& hint,
                                     const RangeBody& body) {
  stops_.EnterRegion();
  ++stats_.regions;

  if (!chunk_stack_.empty()) {
    // Nested: fold the whole region into the spawning chunk. The chunk's
    // running timer keeps measuring, so the inline work's CPU accrues to
    // the parent chunk with no spawn pricing or placement; I/O charged by
    // the body lands on the parent chunk/region as task-local work. The
    // worker index is the parent's — the work really runs there.
    const int w = chunk_stack_.back().worker;
    for (size_t b = begin; b < end; b += grain) {
      if (stops_.StopRequested()) break;
      size_t e = b + grain < end ? b + grain : end;
      ++stats_.spawns_suppressed;
      ++stats_.per_worker_tasks[static_cast<size_t>(w)];
      body(w, b, e);
    }
    stops_.ExitRegion();
    return;
  }

  // Root: price the region as one worker-0 chunk with no per-chunk spawn
  // overhead (the run really is sequential). RegionFrame + ChunkFrame are
  // opened normally so that I/O charges and further-nested regions inside
  // the body behave exactly as in the spawning path.
  RegionFrame fr;
  fr.ready = virtual_now_;
  fr.finish_max = fr.ready;
  fr.parent_worker = 0;
  region_stack_.push_back(fr);
  {
    ChunkFrame cf;
    cf.worker = 0;
    cf.start = fr.ready;
    chunk_stack_.push_back(cf);
  }
  chunk_stack_.back().timer.Restart();
  size_t num_chunks = 0;
  for (size_t b = begin; b < end; b += grain) {
    if (stops_.StopRequested()) break;
    size_t e = b + grain < end ? b + grain : end;
    ++stats_.spawns_suppressed;
    ++stats_.per_worker_tasks[0];
    body(0, b, e);
    ++num_chunks;
  }
  ChunkFrame& cf = chunk_stack_.back();
  cf.cpu += cf.timer.ElapsedSeconds();
  double finish = cf.start + cf.cpu + cf.wait;
  double serial_cpu = cf.cpu;
  if (trace_ != nullptr) {
    trace_->Add(hint.label[0] != '\0' ? hint.label : "parallel-for", cf.start,
                cf.cpu + cf.wait, 0);
  }
  chunk_stack_.pop_back();
  RegionFrame done = region_stack_.back();
  region_stack_.pop_back();
  stops_.ExitRegion();

  avail_[0] = std::max(avail_[0], finish);
  double io_bound =
      done.io_seconds / static_cast<double>(std::max(1, done.io_channels));
  double charged = std::max(finish - done.ready, io_bound);

  last_region_ = RegionStats{};
  last_region_.serial_cpu_seconds = serial_cpu;
  last_region_.makespan_seconds = finish - done.ready;
  last_region_.io_seconds = io_bound;
  last_region_.charged_seconds = charged;
  last_region_.num_chunks = num_chunks;

  virtual_now_ = done.ready + charged;
  total_parallel_ += charged;
}

void SimulatedExecutor::RunSerial(const WorkHint& hint,
                                  const std::function<void()>& fn) {
  if (!chunk_stack_.empty()) {
    // Inside a chunk body this is just task-local work: the enclosing
    // chunk's timer keeps running, so the cost is already accounted.
    fn();
    return;
  }

  RegionFrame fr;
  fr.ready = virtual_now_;
  region_stack_.push_back(fr);

  WallTimer timer;
  fn();
  double cpu = timer.ElapsedSeconds();

  RegionFrame done = region_stack_.back();
  region_stack_.pop_back();

  // Serial I/O cannot overlap with anything: it adds directly.
  double charged = cpu + done.io_seconds;
  if (trace_ != nullptr) {
    trace_->Add(hint.label[0] != '\0' ? hint.label : "serial", virtual_now_,
                charged, 0);
  }

  last_region_ = RegionStats{};
  last_region_.serial_cpu_seconds = cpu;
  last_region_.makespan_seconds = cpu;
  last_region_.io_seconds = done.io_seconds;
  last_region_.charged_seconds = charged;
  last_region_.num_chunks = 1;

  virtual_now_ += charged;
  total_serial_ += cpu;
}

void SimulatedExecutor::ChargeIoTime(double seconds, int channels) {
  if (seconds < 0) seconds = 0;
  total_io_ += seconds;
  if (!chunk_stack_.empty()) {
    // Charged from inside a chunk: extends this chunk (the issuing worker
    // is occupied) and feeds the owning region's device-capacity bound.
    chunk_stack_.back().wait += seconds;
    RegionFrame& rf = region_stack_.back();
    rf.io_seconds += seconds;
    rf.io_channels = std::max(rf.io_channels, channels);
  } else if (!region_stack_.empty()) {
    // Inside RunSerial.
    RegionFrame& rf = region_stack_.back();
    rf.io_seconds += seconds;
    rf.io_channels = std::max(rf.io_channels, channels);
  } else {
    virtual_now_ += seconds;
  }
}

SchedulerStats SimulatedExecutor::scheduler_stats() const { return stats_; }

}  // namespace hpa::parallel
