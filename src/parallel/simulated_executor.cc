#include "parallel/simulated_executor.h"

#include <algorithm>
#include <cassert>

#include "common/timer.h"

namespace hpa::parallel {

SimulatedExecutor::SimulatedExecutor(int workers, const MachineModel& model)
    : workers_(workers < 1 ? 1 : workers), model_(model) {}

void SimulatedExecutor::ParallelFor(size_t begin, size_t end, size_t grain,
                                    const WorkHint& hint,
                                    const RangeBody& body) {
  if (begin >= end) return;
  if (grain == 0) grain = AutoGrain(end - begin);
  assert(!in_region_ && "nested parallel regions are not supported");
  in_region_ = true;
  region_io_seconds_ = 0.0;
  region_io_channels_ = 1;

  // Virtual availability time of each worker, relative to region start.
  std::vector<double> avail(static_cast<size_t>(workers_), 0.0);
  double serial_cpu = 0.0;
  size_t num_chunks = 0;

  for (size_t b = begin; b < end; b += grain) {
    if (stop_requested()) break;
    size_t e = b + grain < end ? b + grain : end;

    // Greedy earliest-finish assignment: the next chunk goes to the worker
    // that frees up first — the schedule dynamic self-scheduling yields.
    size_t w = 0;
    for (size_t i = 1; i < avail.size(); ++i) {
      if (avail[i] < avail[w]) w = i;
    }

    double io_before = region_io_seconds_;
    WallTimer chunk_timer;
    body(static_cast<int>(w), b, e);
    double cpu = chunk_timer.ElapsedSeconds();
    double chunk_io = region_io_seconds_ - io_before;

    serial_cpu += cpu;
    double chunk_start = avail[w] + model_.spawn_overhead_sec;
    avail[w] += model_.spawn_overhead_sec + cpu + chunk_io;
    ++num_chunks;
    if (trace_ != nullptr) {
      trace_->Add(hint.label[0] != '\0' ? hint.label : "parallel-for",
                  virtual_now_ + chunk_start, cpu + chunk_io,
                  static_cast<int>(w));
    }
  }

  double makespan = *std::max_element(avail.begin(), avail.end());

  // Roofline: all P workers together cannot stream more than the machine's
  // bandwidth ceiling; a subset of workers reaches a proportional share.
  // The bound is clamped to the serial time so a 1-worker run is never
  // penalized relative to its own measurement.
  double bw_share = std::min(
      1.0, static_cast<double>(workers_) * model_.per_worker_bandwidth_fraction);
  double bandwidth_seconds = 0.0;
  if (hint.bytes_touched > 0 && model_.mem_bandwidth_bytes_per_sec > 0) {
    bandwidth_seconds = static_cast<double>(hint.bytes_touched) /
                        (model_.mem_bandwidth_bytes_per_sec * bw_share);
    bandwidth_seconds = std::min(bandwidth_seconds, serial_cpu);
  }

  // Device capacity: I/O issued inside the region can overlap across
  // workers, but not beyond the device's channel count.
  double io_bound = region_io_seconds_ /
                    static_cast<double>(std::max(1, region_io_channels_));

  double charged = std::max({makespan, bandwidth_seconds, io_bound});

  last_region_ = RegionStats{};
  last_region_.serial_cpu_seconds = serial_cpu;
  last_region_.makespan_seconds = makespan;
  last_region_.bandwidth_seconds = bandwidth_seconds;
  last_region_.io_seconds = io_bound;
  last_region_.charged_seconds = charged;
  last_region_.num_chunks = num_chunks;
  last_region_.bandwidth_bound = bandwidth_seconds > makespan;

  virtual_now_ += charged;
  total_parallel_ += charged;
  total_io_ += region_io_seconds_;
  in_region_ = false;
  ResetStop();
}

void SimulatedExecutor::RunSerial(const WorkHint& hint,
                                  const std::function<void()>& fn) {
  assert(!in_region_ && "serial region inside a parallel region");
  in_region_ = true;
  region_io_seconds_ = 0.0;
  region_io_channels_ = 1;

  WallTimer timer;
  fn();
  double cpu = timer.ElapsedSeconds();
  // Serial I/O cannot overlap with anything: it adds directly.
  double charged = cpu + region_io_seconds_;
  if (trace_ != nullptr) {
    trace_->Add(hint.label[0] != '\0' ? hint.label : "serial", virtual_now_,
                charged, 0);
  }

  last_region_ = RegionStats{};
  last_region_.serial_cpu_seconds = cpu;
  last_region_.makespan_seconds = cpu;
  last_region_.io_seconds = region_io_seconds_;
  last_region_.charged_seconds = charged;
  last_region_.num_chunks = 1;

  virtual_now_ += charged;
  total_serial_ += cpu;
  total_io_ += region_io_seconds_;
  in_region_ = false;
}

void SimulatedExecutor::ChargeIoTime(double seconds, int channels) {
  if (seconds < 0) seconds = 0;
  if (in_region_) {
    region_io_seconds_ += seconds;
    region_io_channels_ = std::max(region_io_channels_, channels);
  } else {
    virtual_now_ += seconds;
    total_io_ += seconds;
  }
}

}  // namespace hpa::parallel
