#ifndef HPA_PARALLEL_EXECUTOR_H_
#define HPA_PARALLEL_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

/// \file
/// The fork/join execution abstraction that stands in for the paper's
/// Cilkplus runtime. All HPA operators express their parallelism through
/// this interface, which has three interchangeable implementations:
///
///  * `SerialExecutor`    — one worker, direct execution.
///  * `ThreadPoolExecutor`— real OS threads with per-worker work-stealing
///    deques (Chase-Lev: owner LIFO, thieves FIFO).
///  * `SimulatedExecutor` — executes the work for real on the calling
///    thread while maintaining a deterministic *virtual clock* that models
///    P workers (greedy scheduling + roofline bandwidth + simulated I/O).
///
/// The simulated executor is what reproduces the paper's scalability
/// figures on hosts with fewer cores than the authors' testbed.
///
/// Nested parallelism: `ParallelFor` is legally re-entrant from inside a
/// chunk body on every executor — a chunk may spawn a sub-region (or a
/// whole spawn tree), matching Cilkplus where any task can `cilk_spawn`.
/// The region stack is per logical task, and cancellation is region-scoped:
/// `RequestStop()` issued inside a nested region cancels that region (and
/// its descendants) only; the enclosing region keeps running. A stop
/// requested in an outer region is visible inside all of its nested
/// regions. The one remaining restriction is that a ThreadPoolExecutor
/// accepts at most one *root* region at a time from non-pool threads (the
/// historical "one logical stream" contract); violating it aborts with a
/// diagnostic instead of the old silent deadlock.

namespace hpa::parallel {

/// Optional annotations describing a region's resource demands; consumed by
/// the virtual-time executor's roofline model. A default-constructed hint
/// means "compute-bound, negligible memory traffic".
struct WorkHint {
  /// Approximate bytes of memory the whole region touches (reads+writes).
  uint64_t bytes_touched = 0;

  /// Label used in traces; not interpreted by executors.
  const char* label = "";
};

/// Scheduler observability counters, accumulated since executor
/// construction. Cheap enough to keep always-on; surfaced by
/// `bench/micro_parallel` and the ablation harness JSON tails.
struct SchedulerStats {
  /// Parallel regions entered (root and nested).
  uint64_t regions = 0;

  /// Tasks (loop chunks, or stealable splits of them) created.
  uint64_t tasks_spawned = 0;

  /// Tasks executed by a worker other than the one that spawned them. Real
  /// steals for the thread pool; modelled steals (greedy placement on a
  /// different virtual worker) for the simulated executor; 0 when serial.
  uint64_t steals = 0;

  /// Deepest nesting of parallel regions observed (1 = flat).
  uint64_t max_task_depth = 0;

  /// Chunks that would have been spawned as stealable tasks but ran inline
  /// in the calling context because their region fell at or below the
  /// executor's inline threshold (see Executor::set_inline_threshold).
  /// 0 unless the depth-bounded sequential fallback is enabled.
  uint64_t spawns_suppressed = 0;

  /// Tasks taken beyond the first one during steal-half sweeps (see
  /// ThreadPoolExecutor::set_steal_half); each is also counted in
  /// `steals`. 0 for the other executors and with steal-half off.
  uint64_t batch_stolen = 0;

  /// Chunks executed per worker, index = worker id.
  std::vector<uint64_t> per_worker_tasks;
};

/// Abstract fork/join executor. Thread-compatible: one logical stream of
/// root ParallelFor / RunSerial calls at a time, but chunk bodies may
/// re-enter ParallelFor to spawn nested regions (see file comment).
class Executor {
 public:
  /// Chunk body: receives the worker index executing the chunk (in
  /// [0, num_workers())) and the half-open item range of the chunk.
  using RangeBody = std::function<void(int worker, size_t begin, size_t end)>;

  virtual ~Executor() = default;

  /// Number of (real or virtual) workers P.
  virtual int num_workers() const = 0;

  /// Runs `body` over [begin, end) in chunks of at most `grain` items.
  /// Chunk boundaries are grain-aligned and deterministic; chunks are
  /// distributed across workers by work-stealing self-scheduling. Blocks
  /// until the whole range is processed. `grain == 0` selects an automatic
  /// grain of roughly 8 chunks per worker. May be called from inside a
  /// chunk body (nested region): the calling task's worker helps execute
  /// the sub-region, and idle workers steal its tasks.
  virtual void ParallelFor(size_t begin, size_t end, size_t grain,
                           const WorkHint& hint, const RangeBody& body) = 0;

  /// Runs `fn` on the calling thread as a serial region (it occupies all
  /// workers from the virtual clock's point of view — e.g. the ARFF output
  /// phase the paper cannot parallelize). Inside a chunk body this is just
  /// task-local work (it does not stall the other workers).
  virtual void RunSerial(const WorkHint& hint,
                         const std::function<void()>& fn) = 0;

  /// Charges `seconds` of device time to the current execution context.
  /// `channels` is the device's concurrent-request capacity: time charged
  /// from within a parallel region can overlap across workers, but the
  /// region cannot complete I/O faster than (total charged)/(channels).
  /// Called by `io::SimDisk`; not usually called by user code.
  virtual void ChargeIoTime(double seconds, int channels) = 0;

  /// Current reading of this executor's clock in seconds: virtual time for
  /// the simulated executor, wall time plus charged I/O otherwise.
  /// Monotone non-decreasing across calls.
  virtual double Now() const = 0;

  /// Executor kind, for reports ("serial", "threads", "simulated").
  virtual const char* name() const = 0;

  /// Scheduler counters accumulated since construction.
  virtual SchedulerStats scheduler_stats() const = 0;

  /// Convenience: automatic grain used when callers pass grain == 0.
  size_t AutoGrain(size_t items) const {
    size_t chunks = static_cast<size_t>(num_workers()) * 8;
    size_t grain = (items + chunks - 1) / (chunks == 0 ? 1 : chunks);
    return grain == 0 ? 1 : grain;
  }

  /// Cooperative cancellation of the *innermost* parallel region enclosing
  /// the caller. A chunk body that hits an unrecoverable error calls
  /// RequestStop(); chunks of that region (and of regions nested inside it)
  /// not yet started are then skipped (already-running chunks finish —
  /// there is no preemption), so a fail-fast operator stops paying for work
  /// whose result it will discard. ParallelFor still blocks until in-flight
  /// chunks drain, and the flag dies with its region, so an aborted nested
  /// region never poisons its parent and an aborted region never poisons
  /// the next one. Called outside any region, the request is latched and
  /// poisons the next root region (legacy fail-fast-before-start shape).
  /// Callers are responsible for recording *why* they stopped (see
  /// ops::FirstError).
  virtual void RequestStop() = 0;

  /// True once RequestStop() was called against the innermost region
  /// enclosing the caller, or against any of its ancestors. Chunk bodies
  /// poll this between items to quit early.
  virtual bool stop_requested() const = 0;

  /// Depth-bounded sequential fallback: a region whose total item count is
  /// at or below this threshold runs its chunks inline in the calling
  /// context instead of spawning stealable tasks — spawn/steal overhead
  /// (and, on the simulated executor, per-chunk spawn pricing) is skipped,
  /// and SchedulerStats::spawns_suppressed counts the chunks involved.
  /// Chunk boundaries, worker-visible results, and region-scoped
  /// cancellation semantics are unchanged; only the schedule is. 0 (the
  /// default) disables the fallback entirely, preserving the historical
  /// behavior bit-for-bit. The knob exists for callers that issue many
  /// tiny regions (e.g. the serving path's micro-batches), where spawn
  /// overhead would dominate the work.
  ///
  /// Thread-compatibility matches the executor itself: set it from the
  /// submitting thread between regions, not from inside chunk bodies.
  void set_inline_threshold(size_t items) { inline_threshold_ = items; }
  size_t inline_threshold() const { return inline_threshold_; }

 protected:
  /// Item-count threshold at or below which ParallelFor runs inline.
  size_t inline_threshold_ = 0;
};

/// Region-scoped cooperative-stop state for the single-threaded executors
/// (serial, simulated): a stack of per-region flags plus the latched
/// outside-any-region request. Not thread-safe by design — those executors
/// run everything on the calling thread.
class ScopedStopFlags {
 public:
  /// Opens a region. The root region inherits (and consumes) a pending
  /// outside-region stop request; nested regions start clean.
  void EnterRegion() {
    bool poisoned = flags_.empty() && pending_;
    if (poisoned) pending_ = false;
    flags_.push_back(poisoned ? 1 : 0);
  }

  /// Closes the innermost region, discarding its flag.
  void ExitRegion() { flags_.pop_back(); }

  /// Flags the innermost open region, or latches the request for the next
  /// root region when none is open.
  void RequestStop() {
    if (flags_.empty()) {
      pending_ = true;
    } else {
      flags_.back() = 1;
    }
  }

  /// True if the innermost region or any ancestor was flagged (a parent's
  /// stop is visible inside its nested regions, not vice versa).
  bool StopRequested() const {
    if (flags_.empty()) return pending_;
    for (char f : flags_) {
      if (f != 0) return true;
    }
    return false;
  }

  /// Current nesting depth (0 = outside all regions).
  size_t depth() const { return flags_.size(); }

 private:
  std::vector<char> flags_;
  bool pending_ = false;
};

/// Single-worker executor: direct, in-order execution (nested regions
/// simply run inline). The baseline against which self-relative speedups
/// are computed.
class SerialExecutor : public Executor {
 public:
  SerialExecutor();

  int num_workers() const override { return 1; }
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, const RangeBody& body) override;
  void RunSerial(const WorkHint& hint,
                 const std::function<void()>& fn) override;
  void ChargeIoTime(double seconds, int channels) override;
  double Now() const override;
  const char* name() const override { return "serial"; }
  SchedulerStats scheduler_stats() const override;
  void RequestStop() override { stops_.RequestStop(); }
  bool stop_requested() const override { return stops_.StopRequested(); }

 private:
  double start_time_;
  double charged_io_ = 0.0;
  ScopedStopFlags stops_;
  SchedulerStats stats_;
};

/// Factory helpers returning the three executor kinds by name
/// ("serial" | "threads" | "simulated"); used by bench/example flag parsing.
/// Returns nullptr for an unknown kind.
std::unique_ptr<Executor> MakeExecutor(const std::string& kind, int workers);

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_EXECUTOR_H_
