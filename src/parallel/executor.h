#ifndef HPA_PARALLEL_EXECUTOR_H_
#define HPA_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

/// \file
/// The fork/join execution abstraction that stands in for the paper's
/// Cilkplus runtime. All HPA operators express their parallelism through
/// this interface, which has three interchangeable implementations:
///
///  * `SerialExecutor`    — one worker, direct execution.
///  * `ThreadPoolExecutor`— real OS threads, dynamic self-scheduling.
///  * `SimulatedExecutor` — executes the work for real on the calling
///    thread while maintaining a deterministic *virtual clock* that models
///    P workers (greedy scheduling + roofline bandwidth + simulated I/O).
///
/// The simulated executor is what reproduces the paper's scalability
/// figures on hosts with fewer cores than the authors' testbed.

namespace hpa::parallel {

/// Optional annotations describing a region's resource demands; consumed by
/// the virtual-time executor's roofline model. A default-constructed hint
/// means "compute-bound, negligible memory traffic".
struct WorkHint {
  /// Approximate bytes of memory the whole region touches (reads+writes).
  uint64_t bytes_touched = 0;

  /// Label used in traces; not interpreted by executors.
  const char* label = "";
};

/// Abstract fork/join executor. Thread-compatible: one logical stream of
/// ParallelFor / RunSerial calls at a time (no nested parallel regions),
/// matching how the paper's operators are structured.
class Executor {
 public:
  /// Chunk body: receives the worker index executing the chunk (in
  /// [0, num_workers())) and the half-open item range of the chunk.
  using RangeBody = std::function<void(int worker, size_t begin, size_t end)>;

  virtual ~Executor() = default;

  /// Number of (real or virtual) workers P.
  virtual int num_workers() const = 0;

  /// Runs `body` over [begin, end) in chunks of at most `grain` items.
  /// Chunks are distributed across workers by dynamic self-scheduling.
  /// Blocks until the whole range is processed. `grain == 0` selects an
  /// automatic grain of roughly 8 chunks per worker.
  virtual void ParallelFor(size_t begin, size_t end, size_t grain,
                           const WorkHint& hint, const RangeBody& body) = 0;

  /// Runs `fn` on the calling thread as a serial region (it occupies all
  /// workers from the virtual clock's point of view — e.g. the ARFF output
  /// phase the paper cannot parallelize).
  virtual void RunSerial(const WorkHint& hint,
                         const std::function<void()>& fn) = 0;

  /// Charges `seconds` of device time to the current execution context.
  /// `channels` is the device's concurrent-request capacity: time charged
  /// from within a parallel region can overlap across workers, but the
  /// region cannot complete I/O faster than (total charged)/(channels).
  /// Called by `io::SimDisk`; not usually called by user code.
  virtual void ChargeIoTime(double seconds, int channels) = 0;

  /// Current reading of this executor's clock in seconds: virtual time for
  /// the simulated executor, wall time plus charged I/O otherwise.
  /// Monotone non-decreasing across calls.
  virtual double Now() const = 0;

  /// Executor kind, for reports ("serial", "threads", "simulated").
  virtual const char* name() const = 0;

  /// Convenience: automatic grain used when callers pass grain == 0.
  size_t AutoGrain(size_t items) const {
    size_t chunks = static_cast<size_t>(num_workers()) * 8;
    size_t grain = (items + chunks - 1) / (chunks == 0 ? 1 : chunks);
    return grain == 0 ? 1 : grain;
  }

  /// Cooperative cancellation of the *current* parallel region. A chunk
  /// body that hits an unrecoverable error calls RequestStop(); chunks not
  /// yet started are then skipped (already-running chunks finish — there is
  /// no preemption), so a fail-fast operator stops paying for work whose
  /// result it will discard. ParallelFor still blocks until in-flight
  /// chunks drain, and the flag is cleared when the region ends, so one
  /// aborted region never poisons the next. Callers are responsible for
  /// recording *why* they stopped (see ops::FirstError).
  void RequestStop() { stop_requested_.store(true, std::memory_order_release); }

  /// True once RequestStop() was called inside the current region. Chunk
  /// bodies poll this between items to quit early.
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

 protected:
  /// Implementations call this as the region ends (after all chunks drain).
  void ResetStop() { stop_requested_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_requested_{false};
};

/// Single-worker executor: direct, in-order execution. The baseline against
/// which self-relative speedups are computed.
class SerialExecutor : public Executor {
 public:
  SerialExecutor();

  int num_workers() const override { return 1; }
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, const RangeBody& body) override;
  void RunSerial(const WorkHint& hint,
                 const std::function<void()>& fn) override;
  void ChargeIoTime(double seconds, int channels) override;
  double Now() const override;
  const char* name() const override { return "serial"; }

 private:
  double start_time_;
  double charged_io_ = 0.0;
};

/// Factory helpers returning the three executor kinds by name
/// ("serial" | "threads" | "simulated"); used by bench/example flag parsing.
/// Returns nullptr for an unknown kind.
std::unique_ptr<Executor> MakeExecutor(const std::string& kind, int workers);

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_EXECUTOR_H_
