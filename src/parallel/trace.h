#ifndef HPA_PARALLEL_TRACE_H_
#define HPA_PARALLEL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Execution tracing for the virtual-time executor: every chunk and serial
/// region becomes a timeline event on its (virtual) worker lane, exportable
/// as Chrome trace-event JSON (chrome://tracing, Perfetto). This is how
/// one *sees* Figure 3: the serial ARFF phases appear as long single-lane
/// bars while the parallel phases fill all lanes.

namespace hpa::parallel {

/// One executed region chunk or serial section.
struct TraceEvent {
  std::string label;       ///< region label (WorkHint::label or "serial")
  double start_seconds;    ///< virtual start time
  double duration_seconds; ///< virtual duration
  int worker;              ///< virtual worker lane (0-based); serial = 0
};

/// Collects events from an executor run. Attach with
/// `SimulatedExecutor::set_trace`; not thread-safe (the simulated executor
/// is single-threaded by construction).
class ExecutionTrace {
 public:
  /// Appends an event. Events with non-positive duration are kept (they
  /// still mark ordering) but render as instant events.
  void Add(std::string label, double start_seconds, double duration_seconds,
           int worker);

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Serializes in Chrome trace-event format ("traceEvents" array with
  /// complete "X" events; microsecond timestamps).
  std::string ToChromeJson() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_TRACE_H_
