#ifndef HPA_PARALLEL_MACHINE_MODEL_H_
#define HPA_PARALLEL_MACHINE_MODEL_H_

#include <cstdint>

/// \file
/// Calibrated machine parameters consumed by the virtual-time executor and
/// by the workflow cost model.

namespace hpa::parallel {

/// Performance parameters of the (real or modelled) machine.
///
/// The defaults approximate the 16+-core x86 server class used in the
/// paper's evaluation. `Calibrate()` can refine the spawn overhead from a
/// live measurement on the host.
struct MachineModel {
  /// Scheduling cost charged per parallel-loop chunk (task spawn + steal).
  double spawn_overhead_sec = 1.0e-6;

  /// Aggregate DRAM bandwidth ceiling shared by all workers. Parallel
  /// regions whose memory traffic divided by this exceeds their computed
  /// makespan are bandwidth-bound (roofline model).
  double mem_bandwidth_bytes_per_sec = 12.0e9;

  /// Fraction of the bandwidth ceiling one worker can consume on its own.
  /// Single-threaded runs are never limited by the roofline term; this
  /// bounds how early saturation sets in as workers are added.
  double per_worker_bandwidth_fraction = 0.25;

  /// Default machine model (paper-era 16-core server).
  static MachineModel Default() { return MachineModel{}; }

  /// Measures the host's per-task overhead with a timing loop and returns a
  /// model with `spawn_overhead_sec` updated; other fields keep defaults.
  static MachineModel Calibrate();
};

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_MACHINE_MODEL_H_
