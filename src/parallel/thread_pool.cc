#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

// ThreadSanitizer does not model std::atomic_thread_fence (and warns about
// it): the fence-based Chase-Lev fast path would report false races. TSan
// builds therefore use a conservative variant that orders the same accesses
// directly on the atomics (strictly stronger, still correct) — the fenced
// fast path is what production builds run.
#if defined(__SANITIZE_THREAD__)
#define HPA_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HPA_TSAN_BUILD 1
#endif
#endif

namespace hpa::parallel {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pool identity of the current thread. A thread belongs to at most one
// ThreadPoolExecutor for its entire lifetime, so plain thread_locals
// suffice even when several pools coexist in one process.
thread_local ThreadPoolExecutor* tl_pool = nullptr;
thread_local int tl_worker = -1;

// Set while a non-pool thread is running an *inline* root region of this
// pool (it holds the one-root-submitter slot for the duration). Nested
// ParallelFor calls from that thread must be treated as nested regions,
// not as competing root submissions.
thread_local ThreadPoolExecutor* tl_inline_root = nullptr;

}  // namespace

thread_local ThreadPoolExecutor::Region*
    ThreadPoolExecutor::tl_current_region_ = nullptr;

// --- Chase-Lev work-stealing deque -----------------------------------------
//
// Lê/Pop/Cohen/Nardelli, "Correct and Efficient Work-Stealing for Weak
// Memory Models" (PPoPP'13), C11 formulation. The owner pushes and pops at
// `bottom_`; thieves CAS `top_`. The circular buffer grows on demand;
// retired buffers stay alive until the deque dies, because a thief may
// still be reading through a stale buffer pointer mid-steal.
class ThreadPoolExecutor::Deque {
 public:
  Deque() : buffer_(new Buffer(kInitialLogSize)) {}

  ~Deque() {
    Buffer* b = buffer_.load(std::memory_order_relaxed);
    while (b != nullptr) {
      Buffer* prev = b->retired_predecessor;
      delete b;
      b = prev;
    }
  }

  /// Owner only. Pushes `t` at the bottom (LIFO end).
  void Push(Task* t) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t top = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - top > buf->capacity() - 1) {
      buf = Grow(buf, top, b);
    }
    buf->Put(b, t);
#if defined(HPA_TSAN_BUILD)
    bottom_.store(b + 1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only. Pops the most recently pushed task, or nullptr.
  Task* Pop() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
#if defined(HPA_TSAN_BUILD)
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t top = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t top = top_.load(std::memory_order_relaxed);
#endif
    Task* t = nullptr;
    if (top <= b) {
      t = buf->Get(b);
      if (top == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(top, top + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          t = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return t;
  }

  /// Any thread. Racy size estimate (bottom - top); only a hint for the
  /// steal-half batch sizing, never trusted for correctness.
  int64_t ApproxSize() const {
    int64_t top = top_.load(std::memory_order_relaxed);
    int64_t b = bottom_.load(std::memory_order_relaxed);
    return b > top ? b - top : 0;
  }

  /// Any thread. Steals the oldest task (FIFO end), or nullptr if the
  /// deque looked empty or the steal lost a race.
  Task* Steal() {
#if defined(HPA_TSAN_BUILD)
    int64_t top = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    int64_t top = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (top >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    Task* t = buf->Get(top);
    if (!top_.compare_exchange_strong(top, top + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to the owner or another thief
    }
    return t;
  }

 private:
  static constexpr int kInitialLogSize = 6;  // 64 slots

  struct Buffer {
    explicit Buffer(int log_size)
        : log_size_(log_size),
          cells_(new std::atomic<Task*>[size_t{1} << log_size]) {}
    ~Buffer() { delete[] cells_; }

    int64_t capacity() const { return int64_t{1} << log_size_; }
    Task* Get(int64_t i) const {
      return cells_[i & (capacity() - 1)].load(std::memory_order_relaxed);
    }
    void Put(int64_t i, Task* t) {
      cells_[i & (capacity() - 1)].store(t, std::memory_order_relaxed);
    }

    int log_size_;
    std::atomic<Task*>* cells_;
    /// Chain of superseded buffers, freed in ~Deque.
    Buffer* retired_predecessor = nullptr;
  };

  Buffer* Grow(Buffer* old, int64_t top, int64_t bottom) {
    Buffer* bigger = new Buffer(old->log_size_ + 1);
    for (int64_t i = top; i < bottom; ++i) bigger->Put(i, old->Get(i));
    bigger->retired_predecessor = old;
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
};

// --- Pool lifecycle ---------------------------------------------------------

ThreadPoolExecutor::ThreadPoolExecutor(int workers)
    : start_time_(MonotonicSeconds()) {
  if (workers < 1) workers = 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    auto ws = std::make_unique<WorkerState>();
    ws->deque = std::make_unique<Deque>();
    workers_.push_back(std::move(ws));
  }
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

// --- Worker main loop -------------------------------------------------------

void ThreadPoolExecutor::WorkerLoop(int worker) {
  tl_pool = this;
  tl_worker = worker;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [this] {
        return shutting_down_ ||
               active_regions_.load(std::memory_order_acquire) > 0;
      });
      if (shutting_down_) return;
    }
    // Busy phase: drain work while any region is active. Between misses we
    // yield rather than sleep — regions are short-lived and the next task
    // is usually microseconds away.
    while (active_regions_.load(std::memory_order_acquire) > 0) {
      Task* t = FindWork(worker);
      if (t != nullptr) {
        RunTask(t, worker);
      } else {
        std::this_thread::yield();
      }
    }
  }
}

ThreadPoolExecutor::Task* ThreadPoolExecutor::FindWork(int worker) {
  // 1. Own deque, LIFO: the task pushed last is the cache-warm one.
  Task* t = workers_[static_cast<size_t>(worker)]->deque->Pop();
  if (t != nullptr) return t;
  // 2. Injection queue: root tasks submitted from outside the pool.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!injected_.empty()) {
      t = injected_.front();
      injected_.pop_front();
      return t;
    }
  }
  // 3. Steal sweep, FIFO from victims: oldest task = widest chunk range.
  int n = static_cast<int>(workers_.size());
  for (int off = 1; off < n; ++off) {
    int victim = (worker + off) % n;
    Deque& victim_deque = *workers_[static_cast<size_t>(victim)]->deque;
    t = victim_deque.Steal();
    if (t != nullptr) {
      WorkerState& ws = *workers_[static_cast<size_t>(worker)];
      ws.steals.fetch_add(1, std::memory_order_relaxed);
      if (steal_half_.load(std::memory_order_relaxed)) {
        // Steal-half: take up to half of what the victim still appears to
        // hold, one proven single-CAS Steal() at a time, and park the
        // extras on our own deque (owner-side Push — FindWork always runs
        // on the worker that owns this slot). A lost CAS just ends the
        // batch early; every task is still stolen exactly once.
        constexpr int64_t kMaxStealBatch = 16;
        int64_t extra =
            std::min(victim_deque.ApproxSize() / 2, kMaxStealBatch);
        for (int64_t j = 0; j < extra; ++j) {
          Task* more = victim_deque.Steal();
          if (more == nullptr) break;
          ws.deque->Push(more);
          ws.steals.fetch_add(1, std::memory_order_relaxed);
          ws.batch_stolen.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return t;
    }
  }
  return nullptr;
}

// --- Task execution ---------------------------------------------------------

void ThreadPoolExecutor::RunTask(Task* task, int worker) {
  Region* r = task->region;
  Region* prev_region = tl_current_region_;
  tl_current_region_ = r;

  size_t c0 = task->chunk_begin;
  size_t c1 = task->chunk_end;
  WorkerState& ws = *workers_[static_cast<size_t>(worker)];
  if (!r->StopRequested()) {
    // Binary splitting: keep the lower half, expose the upper half to
    // thieves. Splits are on *chunk indices*, so chunk boundaries (and any
    // reduction order derived from them) are identical to the serial
    // executor's fixed grain-aligned chunks.
    while (c1 - c0 > 1) {
      size_t mid = c0 + (c1 - c0) / 2;
      r->tasks_outstanding.fetch_add(1, std::memory_order_relaxed);
      ws.deque->Push(new Task{r, mid, c1});
      ws.spawned.fetch_add(1, std::memory_order_relaxed);
      c1 = mid;
    }
    if (!r->StopRequested()) {
      size_t b = r->begin + c0 * r->grain;
      size_t e = std::min(b + r->grain, r->end);
      (*r->body)(worker, b, e);
      ws.executed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  tl_current_region_ = prev_region;
  delete task;
  CompleteTask(r);
}

void ThreadPoolExecutor::CompleteTask(Region* region) {
  bool notify = region->notify_on_done;
  if (region->tasks_outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (notify) {
      // Empty critical section: pairs with the submitter's wait-under-mu_
      // so this notify cannot fire between its predicate check and sleep.
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPoolExecutor::SeedRegion(Region* region, size_t num_chunks,
                                    int worker) {
  regions_.fetch_add(1, std::memory_order_relaxed);
  uint64_t depth = region->depth;
  uint64_t seen = max_depth_.load(std::memory_order_relaxed);
  while (depth > seen && !max_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  region->tasks_outstanding.store(1, std::memory_order_relaxed);
  Task* root = new Task{region, 0, num_chunks};
  if (worker >= 0) {
    WorkerState& ws = *workers_[static_cast<size_t>(worker)];
    ws.deque->Push(root);
    ws.spawned.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    injected_.push_back(root);
  }
  // Wake sleepers so they can steal; cheap no-op when all are busy.
  wake_cv_.notify_all();
}

void ThreadPoolExecutor::JoinAsWorker(Region* region, int worker) {
  // Help-first join: instead of blocking, the spawning worker keeps
  // executing tasks — preferentially its own, which are exactly the
  // sub-region's thanks to LIFO order — until the sub-region drains.
  while (region->tasks_outstanding.load(std::memory_order_acquire) > 0) {
    Task* t = FindWork(worker);
    if (t != nullptr) {
      RunTask(t, worker);
    } else {
      std::this_thread::yield();
    }
  }
}

// --- Public interface -------------------------------------------------------

void ThreadPoolExecutor::RunRegionInline(Region* region, int worker) {
  // Depth-bounded fallback: the calling thread executes every chunk itself
  // in order. Nothing is pushed, so there is no spawn or steal traffic; the
  // region still gets its own stop scope (cancellation semantics are
  // unchanged) and the usual regions/max-depth accounting.
  regions_.fetch_add(1, std::memory_order_relaxed);
  uint64_t depth = region->depth;
  uint64_t seen = max_depth_.load(std::memory_order_relaxed);
  while (depth > seen && !max_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  Region* prev_region = tl_current_region_;
  tl_current_region_ = region;
  size_t num_chunks = (region->end - region->begin + region->grain - 1) /
                      region->grain;
  const bool pool_thread = tl_pool == this;
  for (size_t c = 0; c < num_chunks; ++c) {
    if (region->StopRequested()) break;
    size_t b = region->begin + c * region->grain;
    size_t e = std::min(b + region->grain, region->end);
    (*region->body)(worker, b, e);
    if (pool_thread) {
      WorkerState& ws = *workers_[static_cast<size_t>(worker)];
      ws.executed.fetch_add(1, std::memory_order_relaxed);
      ws.suppressed.fetch_add(1, std::memory_order_relaxed);
    } else {
      suppressed_external_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  tl_current_region_ = prev_region;
}

void ThreadPoolExecutor::ParallelFor(size_t begin, size_t end, size_t grain,
                                     const WorkHint& hint,
                                     const RangeBody& body) {
  (void)hint;
  if (begin >= end) return;
  if (grain == 0) grain = AutoGrain(end - begin);
  size_t num_chunks = (end - begin + grain - 1) / grain;

  Region region;
  region.body = &body;
  region.begin = begin;
  region.end = end;
  region.grain = grain;

  const bool inline_region =
      inline_threshold_ > 0 && end - begin <= inline_threshold_;

  if (tl_pool == this) {
    // Nested region spawned from inside a chunk body of this pool.
    region.parent = tl_current_region_;
    region.depth = region.parent != nullptr ? region.parent->depth + 1 : 1;
    if (inline_region) {
      // Below the task-size threshold the spawning worker just runs the
      // chunks itself — it would have executed most of them anyway (help-
      // first join), and the deque/steal traffic costs more than the work.
      RunRegionInline(&region, tl_worker);
      return;
    }
    active_regions_.fetch_add(1, std::memory_order_acq_rel);
    SeedRegion(&region, num_chunks, tl_worker);
    JoinAsWorker(&region, tl_worker);
    active_regions_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  if (tl_inline_root == this) {
    // Nested region from inside an inline root region running on the
    // submitting (non-pool) thread. That thread already holds the
    // one-root-submitter slot, so this is a nested region, not a second
    // root. Small ones run inline right here; bigger ones are seeded
    // through the injection queue (this thread owns no deque) and joined
    // by blocking — pool workers execute the chunks.
    region.parent = tl_current_region_;
    region.depth = region.parent != nullptr ? region.parent->depth + 1 : 1;
    if (inline_region) {
      RunRegionInline(&region, /*worker=*/0);
      return;
    }
    region.notify_on_done = true;
    active_regions_.fetch_add(1, std::memory_order_acq_rel);
    SeedRegion(&region, num_chunks, /*worker=*/-1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&region] {
        return region.tasks_outstanding.load(std::memory_order_acquire) == 0;
      });
    }
    active_regions_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  if (inline_region) {
    // Tiny root region from a non-pool thread: claim the one-root-submitter
    // slot (the contract still holds — a second submitter aborts below, as
    // ever), then run the chunks on the calling thread as worker 0. No pool
    // worker executes anything while the slot is held and no tasks are
    // seeded, so worker-indexed scratch under index 0 stays race-free.
    bool expected_inline = false;
    if (!external_active_.compare_exchange_strong(
            expected_inline, true, std::memory_order_acq_rel)) {
      std::fprintf(stderr,
                   "ThreadPoolExecutor: ParallelFor called from a second "
                   "non-pool thread while a root region is active. The "
                   "executor accepts one logical stream of root regions; "
                   "use nested ParallelFor from inside a chunk body "
                   "instead.\n");
      std::abort();
    }
    region.stop.store(
        pending_stop_.exchange(false, std::memory_order_acq_rel),
        std::memory_order_release);
    root_region_.store(&region, std::memory_order_release);
    tl_inline_root = this;
    RunRegionInline(&region, /*worker=*/0);
    tl_inline_root = nullptr;
    root_region_.store(nullptr, std::memory_order_release);
    external_active_.store(false, std::memory_order_release);
    return;
  }

  // Root region from a non-pool thread: enforce the one-logical-stream
  // contract loudly instead of deadlocking a second submitter.
  bool expected = false;
  if (!external_active_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
    std::fprintf(stderr,
                 "ThreadPoolExecutor: ParallelFor called from a second "
                 "non-pool thread while a root region is active. The "
                 "executor accepts one logical stream of root regions; use "
                 "nested ParallelFor from inside a chunk body instead.\n");
    std::abort();
  }
  region.notify_on_done = true;
  // A stop requested before the region began poisons this region only.
  region.stop.store(pending_stop_.exchange(false, std::memory_order_acq_rel),
                    std::memory_order_release);
  root_region_.store(&region, std::memory_order_release);
  active_regions_.fetch_add(1, std::memory_order_acq_rel);
  SeedRegion(&region, num_chunks, /*worker=*/-1);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&region] {
      return region.tasks_outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  active_regions_.fetch_sub(1, std::memory_order_acq_rel);
  root_region_.store(nullptr, std::memory_order_release);
  external_active_.store(false, std::memory_order_release);
}

void ThreadPoolExecutor::RunSerial(const WorkHint& hint,
                                   const std::function<void()>& fn) {
  (void)hint;
  fn();
}

void ThreadPoolExecutor::ChargeIoTime(double seconds, int channels) {
  (void)channels;  // real overlap happens on the real device
  // Accumulate in integer picoseconds with rounding. A truncating cast at
  // nanosecond resolution loses up to 1ns per call, which compounds across
  // millions of small charges; llround at picosecond resolution keeps the
  // worst-case error at 0.5ps per call (2^63 ps ≈ 106 days of charge, far
  // beyond any run).
  charged_io_picos_.fetch_add(std::llround(seconds * 1e12),
                              std::memory_order_relaxed);
}

double ThreadPoolExecutor::Now() const {
  return (MonotonicSeconds() - start_time_) + charged_io_seconds();
}

double ThreadPoolExecutor::charged_io_seconds() const {
  return static_cast<double>(
             charged_io_picos_.load(std::memory_order_relaxed)) *
         1e-12;
}

SchedulerStats ThreadPoolExecutor::scheduler_stats() const {
  SchedulerStats s;
  s.regions = regions_.load(std::memory_order_relaxed);
  s.max_task_depth = max_depth_.load(std::memory_order_relaxed);
  s.per_worker_tasks.reserve(workers_.size());
  s.spawns_suppressed = suppressed_external_.load(std::memory_order_relaxed);
  for (const auto& ws : workers_) {
    s.tasks_spawned += ws->spawned.load(std::memory_order_relaxed);
    s.steals += ws->steals.load(std::memory_order_relaxed);
    s.spawns_suppressed += ws->suppressed.load(std::memory_order_relaxed);
    s.batch_stolen += ws->batch_stolen.load(std::memory_order_relaxed);
    s.per_worker_tasks.push_back(ws->executed.load(std::memory_order_relaxed));
  }
  return s;
}

void ThreadPoolExecutor::RequestStop() {
  if ((tl_pool == this || tl_inline_root == this) &&
      tl_current_region_ != nullptr) {
    // From inside a chunk body: stop the innermost region only.
    tl_current_region_->stop.store(true, std::memory_order_release);
    return;
  }
  // From the submitting thread (between regions, or concurrently with one):
  // stop the active root region if any, else latch for the next one.
  Region* root = root_region_.load(std::memory_order_acquire);
  if (root != nullptr) {
    root->stop.store(true, std::memory_order_release);
  } else {
    pending_stop_.store(true, std::memory_order_release);
  }
}

bool ThreadPoolExecutor::stop_requested() const {
  if ((tl_pool == this || tl_inline_root == this) &&
      tl_current_region_ != nullptr) {
    return tl_current_region_->StopRequested();
  }
  Region* root = root_region_.load(std::memory_order_acquire);
  if (root != nullptr) return root->stop.load(std::memory_order_acquire);
  return pending_stop_.load(std::memory_order_acquire);
}

}  // namespace hpa::parallel
