#include "parallel/thread_pool.h"

#include <chrono>

namespace hpa::parallel {

namespace {
double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(int workers)
    : start_time_(MonotonicSeconds()) {
  if (workers < 1) workers = 1;
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPoolExecutor::WorkerLoop(int worker_index) {
  uint64_t seen_sequence = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutting_down_ ||
               (current_job_ != nullptr && job_sequence_ != seen_sequence);
      });
      if (shutting_down_) return;
      seen_sequence = job_sequence_;
      job = current_job_;
      ++workers_inside_;
    }
    // Self-schedule chunks until the job is drained. Once a stop has been
    // requested, remaining chunks are claimed but skipped — they still
    // count as done so the submitter's completion wait is unchanged.
    while (true) {
      size_t chunk = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job->num_chunks) break;
      if (!stop_requested()) {
        size_t b = job->begin + chunk * job->grain;
        size_t e = b + job->grain;
        if (e > job->end) e = job->end;
        (*job->body)(worker_index, b, e);
      }
      job->chunks_done.fetch_add(1, std::memory_order_acq_rel);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_inside_;
    }
    // The submitting thread waits for (all chunks done && no worker still
    // holds a pointer to the job); wake it on every exit.
    work_done_.notify_all();
  }
}

void ThreadPoolExecutor::ParallelFor(size_t begin, size_t end, size_t grain,
                                     const WorkHint& hint,
                                     const RangeBody& body) {
  (void)hint;
  if (begin >= end) return;
  if (grain == 0) grain = AutoGrain(end - begin);

  Job job;
  job.body = &body;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.num_chunks = (end - begin + grain - 1) / grain;

  {
    std::lock_guard<std::mutex> lock(mu_);
    current_job_ = &job;
    ++job_sequence_;
  }
  work_ready_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] {
      return workers_inside_ == 0 &&
             job.chunks_done.load(std::memory_order_acquire) ==
                 job.num_chunks;
    });
    // Clear under the same lock acquisition that observed completion, so no
    // late worker can pick the job up between the check and the clear.
    current_job_ = nullptr;
  }
  ResetStop();
}

void ThreadPoolExecutor::RunSerial(const WorkHint& hint,
                                   const std::function<void()>& fn) {
  (void)hint;
  fn();
}

void ThreadPoolExecutor::ChargeIoTime(double seconds, int channels) {
  (void)channels;  // real-threaded runs account charged I/O flatly
  charged_io_nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                              std::memory_order_relaxed);
}

double ThreadPoolExecutor::Now() const {
  return (MonotonicSeconds() - start_time_) +
         static_cast<double>(
             charged_io_nanos_.load(std::memory_order_relaxed)) *
             1e-9;
}

}  // namespace hpa::parallel
