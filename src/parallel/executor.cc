#include "parallel/executor.h"

#include <algorithm>
#include <chrono>

#include "parallel/simulated_executor.h"
#include "parallel/thread_pool.h"

namespace hpa::parallel {

namespace {
double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SerialExecutor::SerialExecutor() : start_time_(MonotonicSeconds()) {
  stats_.per_worker_tasks.assign(1, 0);
}

void SerialExecutor::ParallelFor(size_t begin, size_t end, size_t grain,
                                 const WorkHint& hint, const RangeBody& body) {
  (void)hint;
  if (begin >= end) return;
  if (grain == 0) grain = AutoGrain(end - begin);
  stops_.EnterRegion();
  ++stats_.regions;
  stats_.max_task_depth = std::max<uint64_t>(stats_.max_task_depth,
                                             stops_.depth());
  // Chunked execution (not one big call) so that grain-dependent behaviour,
  // e.g. per-chunk scratch reuse, is identical across executors. Nested
  // ParallelFor calls from `body` re-enter here and run inline, with their
  // own stop scope.
  const bool suppress =
      inline_threshold_ > 0 && end - begin <= inline_threshold_;
  for (size_t b = begin; b < end; b += grain) {
    if (stops_.StopRequested()) break;
    size_t e = b + grain < end ? b + grain : end;
    if (suppress) {
      ++stats_.spawns_suppressed;
    } else {
      ++stats_.tasks_spawned;
    }
    ++stats_.per_worker_tasks[0];
    body(0, b, e);
  }
  stops_.ExitRegion();
}

void SerialExecutor::RunSerial(const WorkHint& hint,
                               const std::function<void()>& fn) {
  (void)hint;
  fn();
}

void SerialExecutor::ChargeIoTime(double seconds, int channels) {
  (void)channels;  // a single caller cannot overlap its own I/O
  charged_io_ += seconds;
}

double SerialExecutor::Now() const {
  return (MonotonicSeconds() - start_time_) + charged_io_;
}

SchedulerStats SerialExecutor::scheduler_stats() const { return stats_; }

std::unique_ptr<Executor> MakeExecutor(const std::string& kind, int workers) {
  if (workers < 1) workers = 1;
  if (kind == "serial") return std::make_unique<SerialExecutor>();
  if (kind == "threads") return std::make_unique<ThreadPoolExecutor>(workers);
  if (kind == "simulated") {
    return std::make_unique<SimulatedExecutor>(workers,
                                               MachineModel::Default());
  }
  return nullptr;
}

}  // namespace hpa::parallel
