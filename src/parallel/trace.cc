#include "parallel/trace.h"

#include <utility>

#include "common/string_util.h"

namespace hpa::parallel {

void ExecutionTrace::Add(std::string label, double start_seconds,
                         double duration_seconds, int worker) {
  events_.push_back(TraceEvent{std::move(label), start_seconds,
                               duration_seconds, worker});
}

std::string ExecutionTrace::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    // Escape is unnecessary: labels are compile-time literals by
    // convention, but guard against quotes anyway.
    std::string name;
    name.reserve(e.label.size());
    for (char c : e.label) {
      if (c == '"' || c == '\\') name += '\\';
      name += c;
    }
    out += StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f}",
        name.c_str(), e.worker, e.start_seconds * 1e6,
        e.duration_seconds * 1e6);
  }
  out += "]}";
  return out;
}

}  // namespace hpa::parallel
