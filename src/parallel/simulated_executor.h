#ifndef HPA_PARALLEL_SIMULATED_EXECUTOR_H_
#define HPA_PARALLEL_SIMULATED_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/timer.h"
#include "parallel/executor.h"
#include "parallel/machine_model.h"
#include "parallel/trace.h"

/// \file
/// The virtual-time executor that reproduces multicore scalability on a
/// host with fewer cores than the paper's testbed (see DESIGN.md §5).

namespace hpa::parallel {

/// Executes all work for real on the calling thread (results are identical
/// to a threaded run) while maintaining a deterministic virtual clock for a
/// machine with P workers.
///
/// Model:
///  * A serial region of measured CPU duration `d` advances the clock by
///    `d` (plus any simulated I/O charged during it).
///  * A parallel region's chunks are measured individually and laid onto P
///    virtual workers by greedy earliest-finish scheduling — the schedule a
///    work-stealing (Cilk-style) loop converges to — with a calibrated
///    per-chunk spawn overhead. The region's virtual duration is the
///    makespan, subject to two lower bounds:
///      - roofline: `hint.bytes_touched / mem_bandwidth` (a memory-bound
///        region cannot go faster than DRAM feeds all cores), softened so a
///        single worker is never penalized;
///      - I/O: total simulated device time charged inside the region,
///        divided by the device's channel count (requests can overlap
///        across workers but not beyond device concurrency).
///  * Nested regions (a chunk body calling ParallelFor) are priced on the
///    same shared worker timeline: the spawning chunk suspends at its
///    current virtual position, freeing its worker to "help"; the nested
///    region's chunks are greedily placed on whichever workers free up
///    first (idle workers model thieves); the parent chunk resumes when the
///    nested region's virtual end is reached. The whole spawn tree is thus
///    scheduled deterministically — same chunk durations in, same virtual
///    makespan out.
///  * The worker index passed to chunk bodies is the virtual worker chosen
///    by the scheduler, so worker-indexed scratch behaves exactly as it
///    would under real threads (P accumulators, merged afterwards).
///
/// Cancellation is region-scoped exactly as on the other executors: a stop
/// requested inside a nested region dies with that region.
class SimulatedExecutor : public Executor {
 public:
  /// Per-region accounting record, useful for tests and traces.
  struct RegionStats {
    double serial_cpu_seconds = 0.0;   ///< sum of chunk durations (T1)
    double makespan_seconds = 0.0;     ///< greedy makespan incl. spawn cost
    double bandwidth_seconds = 0.0;    ///< roofline lower bound
    double io_seconds = 0.0;           ///< charged I/O / channels
    double charged_seconds = 0.0;      ///< what the clock advanced by
    size_t num_chunks = 0;
    bool bandwidth_bound = false;
  };

  SimulatedExecutor(int workers, const MachineModel& model);

  int num_workers() const override { return workers_; }
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, const RangeBody& body) override;
  void RunSerial(const WorkHint& hint,
                 const std::function<void()>& fn) override;
  void ChargeIoTime(double seconds, int channels) override;
  double Now() const override { return virtual_now_; }
  const char* name() const override { return "simulated"; }
  SchedulerStats scheduler_stats() const override;
  void RequestStop() override { stops_.RequestStop(); }
  bool stop_requested() const override { return stops_.StopRequested(); }

  /// Stats of the most recently completed *top-level* region (a nested
  /// region's cost is folded into its parent's chunk, and its stats are
  /// overwritten when the parent region completes).
  const RegionStats& last_region() const { return last_region_; }

  /// Total virtual seconds spent in top-level parallel regions / serial
  /// regions / charged as I/O since construction, for breakdown reporting.
  double total_parallel_seconds() const { return total_parallel_; }
  double total_serial_seconds() const { return total_serial_; }
  double total_io_seconds() const { return total_io_; }

  const MachineModel& machine_model() const { return model_; }

  /// Attaches a trace sink recording one event per executed chunk and per
  /// serial region on the virtual timeline. Pass nullptr to detach. The
  /// trace must outlive the executor's region calls.
  void set_trace(ExecutionTrace* trace) { trace_ = trace; }

 private:
  /// The chunk currently executing (innermost, when regions nest). Its
  /// virtual position is `start + cpu + wait` plus the running timer.
  struct ChunkFrame {
    int worker = 0;
    double start = 0.0;  ///< absolute virtual start (after spawn overhead)
    double cpu = 0.0;    ///< folded CPU from segments before a nested spawn
    double wait = 0.0;   ///< I/O charged + time joined on nested regions
    WallTimer timer;     ///< running CPU segment
  };

  /// An open parallel region (root or nested).
  struct RegionFrame {
    double ready = 0.0;       ///< absolute virtual time the region starts
    double finish_max = 0.0;  ///< latest chunk finish seen so far (absolute)
    double io_seconds = 0.0;  ///< I/O charged directly in this region
    int io_channels = 1;      ///< widest channel count seen in this region
    int parent_worker = 0;    ///< worker of the spawning chunk (0 for root)
  };

  /// Depth-bounded fallback body (Executor::set_inline_threshold): runs the
  /// region's chunks inline. Nested, it folds into the spawning chunk (the
  /// chunk's running timer absorbs the CPU; no spawn pricing); at root it
  /// is priced as a single worker-0 chunk with no per-chunk spawn overhead.
  void InlineRegion(size_t begin, size_t end, size_t grain,
                    const WorkHint& hint, const RangeBody& body);

  int workers_;
  MachineModel model_;
  double virtual_now_ = 0.0;

  /// Absolute virtual time each worker becomes free; shared across the
  /// whole spawn tree so nested regions compete for the same P workers.
  std::vector<double> avail_;

  std::vector<RegionFrame> region_stack_;
  std::vector<ChunkFrame> chunk_stack_;
  ScopedStopFlags stops_;

  ExecutionTrace* trace_ = nullptr;

  RegionStats last_region_;
  SchedulerStats stats_;
  double total_parallel_ = 0.0;
  double total_serial_ = 0.0;
  double total_io_ = 0.0;
};

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_SIMULATED_EXECUTOR_H_
