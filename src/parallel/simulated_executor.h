#ifndef HPA_PARALLEL_SIMULATED_EXECUTOR_H_
#define HPA_PARALLEL_SIMULATED_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/executor.h"
#include "parallel/machine_model.h"
#include "parallel/trace.h"

/// \file
/// The virtual-time executor that reproduces multicore scalability on a
/// host with fewer cores than the paper's testbed (see DESIGN.md §5).

namespace hpa::parallel {

/// Executes all work for real on the calling thread (results are identical
/// to a threaded run) while maintaining a deterministic virtual clock for a
/// machine with P workers.
///
/// Model:
///  * A serial region of measured CPU duration `d` advances the clock by
///    `d` (plus any simulated I/O charged during it).
///  * A parallel region's chunks are measured individually and laid onto P
///    virtual workers by greedy earliest-finish scheduling — the schedule a
///    dynamic self-scheduled (Cilk-style) loop converges to — with a
///    calibrated per-chunk spawn overhead. The region's virtual duration is
///    the makespan, subject to two lower bounds:
///      - roofline: `hint.bytes_touched / mem_bandwidth` (a memory-bound
///        region cannot go faster than DRAM feeds all cores), softened so a
///        single worker is never penalized;
///      - I/O: total simulated device time charged inside the region,
///        divided by the device's channel count (requests can overlap
///        across workers but not beyond device concurrency).
///  * The worker index passed to chunk bodies is the virtual worker chosen
///    by the scheduler, so worker-indexed scratch behaves exactly as it
///    would under real threads (P accumulators, merged afterwards).
///
/// Not reentrant: regions must not nest (HPA operators never nest them).
class SimulatedExecutor : public Executor {
 public:
  /// Per-region accounting record, useful for tests and traces.
  struct RegionStats {
    double serial_cpu_seconds = 0.0;   ///< sum of chunk durations (T1)
    double makespan_seconds = 0.0;     ///< greedy makespan incl. spawn cost
    double bandwidth_seconds = 0.0;    ///< roofline lower bound
    double io_seconds = 0.0;           ///< charged I/O / channels
    double charged_seconds = 0.0;      ///< what the clock advanced by
    size_t num_chunks = 0;
    bool bandwidth_bound = false;
  };

  SimulatedExecutor(int workers, const MachineModel& model);

  int num_workers() const override { return workers_; }
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const WorkHint& hint, const RangeBody& body) override;
  void RunSerial(const WorkHint& hint,
                 const std::function<void()>& fn) override;
  void ChargeIoTime(double seconds, int channels) override;
  double Now() const override { return virtual_now_; }
  const char* name() const override { return "simulated"; }

  /// Stats of the most recently completed region.
  const RegionStats& last_region() const { return last_region_; }

  /// Total virtual seconds spent in parallel regions / serial regions /
  /// charged as I/O since construction, for breakdown reporting.
  double total_parallel_seconds() const { return total_parallel_; }
  double total_serial_seconds() const { return total_serial_; }
  double total_io_seconds() const { return total_io_; }

  const MachineModel& machine_model() const { return model_; }

  /// Attaches a trace sink recording one event per executed chunk and per
  /// serial region on the virtual timeline. Pass nullptr to detach. The
  /// trace must outlive the executor's region calls.
  void set_trace(ExecutionTrace* trace) { trace_ = trace; }

 private:
  int workers_;
  MachineModel model_;
  double virtual_now_ = 0.0;

  // Region bookkeeping (single-threaded use; see class comment).
  bool in_region_ = false;
  double region_io_seconds_ = 0.0;   // sum of charged I/O inside region
  int region_io_channels_ = 1;       // widest channel count seen in region

  ExecutionTrace* trace_ = nullptr;

  RegionStats last_region_;
  double total_parallel_ = 0.0;
  double total_serial_ = 0.0;
  double total_io_ = 0.0;
};

}  // namespace hpa::parallel

#endif  // HPA_PARALLEL_SIMULATED_EXECUTOR_H_
