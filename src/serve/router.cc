#include "serve/router.h"

#include <algorithm>
#include <utility>

#include "common/checksum.h"
#include "common/string_util.h"

namespace hpa::serve {

namespace {

/// Maps a 64-bit hash to a uniform double in [0, 1) (the fault injector's
/// and breaker's mapping, reused so sample-rate semantics match).
double ToUnit(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Bucket hash of a request identity for the weighted split. Pure in
/// (salt, id): no state, no clock — the whole point.
uint64_t BucketHash(uint64_t salt, uint64_t id) {
  return StableHash64(StrFormat("route-%llu-%llu",
                                static_cast<unsigned long long>(salt),
                                static_cast<unsigned long long>(id)));
}

/// Independent stream deciding shadow-sample membership. A different
/// prefix than the bucket hash, so which route serves an id and whether
/// it is shadow-scored are uncorrelated decisions.
uint64_t ShadowHash(uint64_t salt, uint64_t id) {
  return StableHash64(StrFormat("shadow-%llu-%llu",
                                static_cast<unsigned long long>(salt),
                                static_cast<unsigned long long>(id)));
}

/// A response whose answer came off a model (vs shed/expired/failed —
/// those carry model_version 0 and nothing to compare against).
bool WasScored(const Response& r) {
  return (r.outcome == RequestOutcome::kOk ||
          r.outcome == RequestOutcome::kDeadlineMiss) &&
         r.model_version != 0;
}

}  // namespace

std::string RouteStats::Summary() const {
  return StrFormat(
      "version=%llu kind=%s weight=%u shadow=%d routed=%llu "
      "completed=%llu shed=%llu opens=%llu half_opens=%llu probes=%llu "
      "shadow_scored=%llu agreed=%llu disagreed=%llu",
      static_cast<unsigned long long>(version),
      std::string(ModelKindName(kind)).c_str(), weight, shadow ? 1 : 0,
      static_cast<unsigned long long>(routed),
      static_cast<unsigned long long>(metrics.completed),
      static_cast<unsigned long long>(metrics.shed),
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(breaker_half_opens),
      static_cast<unsigned long long>(breaker_probes),
      static_cast<unsigned long long>(shadow_scored),
      static_cast<unsigned long long>(shadow_agreed),
      static_cast<unsigned long long>(shadow_disagreed));
}

ModelRouter::ModelRouter(const ops::ExecContext& ctx,
                         const RouterOptions& options)
    : ctx_(ctx), options_(options) {
  if (options_.shadow_sample < 0.0) options_.shadow_sample = 0.0;
  if (options_.shadow_sample > 1.0) options_.shadow_sample = 1.0;
}

ModelRouter::~ModelRouter() {
  if (pins_ == nullptr) return;
  for (const auto& route : routes_) pins_->Unpin(route->version);
}

Status ModelRouter::AddRoute(std::shared_ptr<const ModelHandle> handle,
                             uint32_t weight, bool shadow,
                             const ServerOptions* server_options) {
  if (handle == nullptr) {
    return Status::InvalidArgument("router: null model handle");
  }
  if (shadow && weight != 0) {
    return Status::InvalidArgument(
        StrFormat("router: shadow route v%llu must carry weight 0 (got %u)",
                  static_cast<unsigned long long>(handle->version()), weight));
  }
  if (FindRoute(handle->version()) != nullptr) {
    return Status::FailedPrecondition(
        StrFormat("router: version %llu already routed",
                  static_cast<unsigned long long>(handle->version())));
  }
  auto route = std::make_unique<Route>();
  route->version = handle->version();
  route->weight = weight;
  route->shadow = shadow;
  route->handle = std::move(handle);
  route->metrics =
      std::make_unique<ServeMetrics>(ctx_.executor->num_workers());
  const ServerOptions& opts =
      server_options != nullptr ? *server_options : options_.server;
  route->server = std::make_unique<AnalyticsServer>(
      ctx_, route->handle.get(), opts, route->metrics.get());
  if (pins_ != nullptr) pins_->Pin(route->version);
  routes_.push_back(std::move(route));
  RebuildBuckets();
  return Status::OK();
}

Status ModelRouter::SetWeight(uint64_t version, uint32_t weight) {
  Route* route = FindRoute(version);
  if (route == nullptr) {
    return Status::NotFound(StrFormat(
        "router: no route for version %llu",
        static_cast<unsigned long long>(version)));
  }
  if (route->shadow && weight != 0) {
    return Status::FailedPrecondition(
        StrFormat("router: version %llu is a shadow route; SetShadow(false) "
                  "before weighting it",
                  static_cast<unsigned long long>(version)));
  }
  route->weight = weight;
  RebuildBuckets();
  return Status::OK();
}

Status ModelRouter::SetShadow(uint64_t version, bool shadow) {
  Route* route = FindRoute(version);
  if (route == nullptr) {
    return Status::NotFound(StrFormat(
        "router: no route for version %llu",
        static_cast<unsigned long long>(version)));
  }
  if (shadow && route->weight != 0) {
    return Status::FailedPrecondition(
        StrFormat("router: version %llu carries weight %u; zero it before "
                  "entering shadow",
                  static_cast<unsigned long long>(version), route->weight));
  }
  route->shadow = shadow;
  RebuildBuckets();
  return Status::OK();
}

Status ModelRouter::RemoveRoute(uint64_t version) {
  for (size_t i = 0; i < routes_.size(); ++i) {
    if (routes_[i]->version != version) continue;
    std::vector<Response> drained = routes_[i]->server->Drain();
    ShadowCompare(drained);
    pending_removed_.insert(pending_removed_.end(),
                            std::make_move_iterator(drained.begin()),
                            std::make_move_iterator(drained.end()));
    if (pins_ != nullptr) pins_->Unpin(version);
    routes_.erase(routes_.begin() + static_cast<ptrdiff_t>(i));
    RebuildBuckets();
    return Status::OK();
  }
  return Status::NotFound(StrFormat(
      "router: no route for version %llu",
      static_cast<unsigned long long>(version)));
}

void ModelRouter::RebuildBuckets() {
  cum_.clear();
  weighted_.clear();
  total_weight_ = 0;
  for (const auto& route : routes_) {
    if (route->shadow || route->weight == 0) continue;
    total_weight_ += route->weight;
    cum_.push_back(total_weight_);
    weighted_.push_back(route.get());
  }
}

uint64_t ModelRouter::RouteVersionFor(uint64_t id) const {
  if (total_weight_ == 0) return 0;
  uint32_t bucket =
      static_cast<uint32_t>(BucketHash(options_.salt, id) % total_weight_);
  // Tiny table (route count, not weight total): a linear walk beats a
  // binary search at realistic fan-outs and is branch-predictable.
  for (size_t i = 0; i < cum_.size(); ++i) {
    if (bucket < cum_[i]) return weighted_[i]->version;
  }
  return weighted_.back()->version;  // unreachable; bucket < total_weight_
}

bool ModelRouter::ShadowSampled(uint64_t id) const {
  if (options_.shadow_sample <= 0.0) return false;
  if (options_.shadow_sample >= 1.0) return true;
  return ToUnit(ShadowHash(options_.salt, id)) < options_.shadow_sample;
}

Status ModelRouter::Submit(uint64_t id, std::string body, double deadline_sec,
                           Lane lane) {
  if (total_weight_ == 0) {
    return Status::FailedPrecondition("router: no route carries weight");
  }
  uint64_t version = RouteVersionFor(id);
  Route* route = FindRoute(version);
  ++route->routed;
  // Stash the body for shadow comparison BEFORE handing it off, but only
  // when a shadow route exists to consume it and the id is sampled.
  // Rejected submissions never produce a response, so the stash happens
  // only after a successful admission below.
  bool sample = has_shadow_routes() && ShadowSampled(id);
  std::string shadow_body;
  if (sample) shadow_body = body;
  Status admitted = route->server->Submit(id, std::move(body), deadline_sec,
                                          lane);
  if (admitted.ok() && sample) {
    shadow_pending_.emplace(id, std::move(shadow_body));
  }
  return admitted;
}

std::vector<Response> ModelRouter::Poll() {
  std::vector<Response> out = std::move(pending_removed_);
  pending_removed_.clear();
  for (const auto& route : routes_) {
    std::vector<Response> batch = route->server->Poll();
    ShadowCompare(batch);
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

std::vector<Response> ModelRouter::FlushAll() {
  std::vector<Response> out = std::move(pending_removed_);
  pending_removed_.clear();
  for (const auto& route : routes_) {
    std::vector<Response> batch = route->server->FlushAll();
    ShadowCompare(batch);
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

std::vector<Response> ModelRouter::Drain() {
  std::vector<Response> out = std::move(pending_removed_);
  pending_removed_.clear();
  for (const auto& route : routes_) {
    std::vector<Response> batch = route->server->Drain();
    ShadowCompare(batch);
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  // Anything still pending was sampled but never answered (should be
  // impossible — every admitted request surfaces — but a drained router
  // must not hold request bodies).
  if (!shadow_pending_.empty()) {
    for (const auto& route : routes_) {
      if (route->shadow) route->shadow_skipped += shadow_pending_.size();
    }
    shadow_pending_.clear();
  }
  return out;
}

void ModelRouter::ShadowCompare(const std::vector<Response>& batch) {
  if (shadow_pending_.empty()) return;
  for (const Response& r : batch) {
    auto it = shadow_pending_.find(r.id);
    if (it == shadow_pending_.end()) continue;
    if (WasScored(r)) {
      for (const auto& route : routes_) {
        if (!route->shadow) continue;
        // Serial, direct Classify against the shadow handle only: no
        // queue, no breaker, no metrics, no executor region — shadow
        // scoring is invisible to the served timeline by construction.
        ++route->shadow_scored;
        uint32_t cluster = route->handle->Classify(it->second);
        if (cluster == r.cluster) {
          ++route->shadow_agreed;
        } else {
          ++route->shadow_disagreed;
        }
      }
    } else {
      for (const auto& route : routes_) {
        if (route->shadow) ++route->shadow_skipped;
      }
    }
    shadow_pending_.erase(it);
  }
}

std::vector<RouteStats> ModelRouter::Scrape() const {
  std::vector<RouteStats> out;
  out.reserve(routes_.size());
  for (const auto& route : routes_) {
    RouteStats stats;
    stats.version = route->version;
    stats.kind = route->handle->kind();
    stats.weight = route->weight;
    stats.shadow = route->shadow;
    stats.routed = route->routed;
    stats.metrics = route->metrics->Scrape();
    const CircuitBreaker& breaker = route->server->breaker();
    stats.breaker_opens = breaker.opens();
    stats.breaker_half_opens = breaker.half_opens();
    stats.breaker_closes = breaker.closes();
    stats.breaker_probes = breaker.probes_admitted();
    stats.breaker_sheds = breaker.sheds();
    stats.shadow_scored = route->shadow_scored;
    stats.shadow_agreed = route->shadow_agreed;
    stats.shadow_disagreed = route->shadow_disagreed;
    stats.shadow_skipped = route->shadow_skipped;
    out.push_back(std::move(stats));
  }
  return out;
}

std::vector<uint64_t> ModelRouter::versions() const {
  std::vector<uint64_t> out;
  out.reserve(routes_.size());
  for (const auto& route : routes_) out.push_back(route->version);
  return out;
}

const AnalyticsServer* ModelRouter::server(uint64_t version) const {
  const Route* route = FindRoute(version);
  return route == nullptr ? nullptr : route->server.get();
}

void ModelRouter::set_pins(VersionPinSet* pins) {
  if (pins_ == pins) return;
  if (pins_ != nullptr) {
    for (const auto& route : routes_) pins_->Unpin(route->version);
  }
  pins_ = pins;
  if (pins_ != nullptr) {
    for (const auto& route : routes_) pins_->Pin(route->version);
  }
}

ModelRouter::Route* ModelRouter::FindRoute(uint64_t version) {
  for (const auto& route : routes_) {
    if (route->version == version) return route.get();
  }
  return nullptr;
}

const ModelRouter::Route* ModelRouter::FindRoute(uint64_t version) const {
  for (const auto& route : routes_) {
    if (route->version == version) return route.get();
  }
  return nullptr;
}

bool ModelRouter::has_shadow_routes() const {
  for (const auto& route : routes_) {
    if (route->shadow) return true;
  }
  return false;
}

}  // namespace hpa::serve
