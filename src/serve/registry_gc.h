#ifndef HPA_SERVE_REGISTRY_GC_H_
#define HPA_SERVE_REGISTRY_GC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/sim_disk.h"
#include "serve/model_registry.h"

/// \file
/// Garbage collection / compaction for a ModelRegistry directory. A
/// registry accumulates damage in exactly three shapes, all of which a
/// crash mid-publish (or bit rot on the backing store) can produce:
///
///   * **torn publishes** — artifact files without a committed manifest
///     (a crash before the manifest landed). The version never existed
///     by commit discipline; its orphan artifacts are deleted.
///   * **corrupt versions** — a committed manifest whose artifacts are
///     missing, truncated, or fail their CRC. These are *quarantined*,
///     not deleted: a `model-<V>.quarantined` marker (with the reason)
///     blocks future Loads while preserving the evidence.
///   * **stale latest pointer** — `latest` missing, unparsable, or
///     pointing at a torn/quarantined version. Repaired to the newest
///     intact committed version.
///
/// On top of repair, GC applies a retain-N policy: only the newest
/// `retain` intact versions are kept; older intact versions are removed
/// manifest-first, so a crash mid-removal degrades to a torn publish the
/// next GC run cleans up. Every mutation goes through the disk's atomic
/// whole-file path or single-file Remove, making GC itself crash-safe
/// and idempotent: running it twice is a no-op the second time.
///
/// Versions are dense from 1 (the registry never skips numbers), so the
/// scan probes upward with no directory listing: the horizon starts at
/// the latest pointer (so prefixes removed by earlier passes cannot end
/// the scan early) and extends `kScanGapLimit` past every trace found.

namespace hpa::serve {

struct GcOptions {
  /// Newest intact versions to keep. Minimum 1 (the serving model must
  /// survive); values below 1 are clamped.
  uint64_t retain = 2;

  /// Live-routed version pins (not owned; null = none). Pinned versions
  /// are exempt from retain-N removal no matter how old — a router
  /// serving a 90/10 split must never have either side compacted out
  /// from under it. Pins do NOT block torn-publish cleanup or
  /// corruption quarantine: those protect correctness, pins protect
  /// availability, and a pinned-but-corrupt version must still stop
  /// serving new loads.
  const VersionPinSet* pins = nullptr;
};

/// What one GC pass found and did. All version lists are ascending.
struct GcReport {
  uint64_t scanned_versions = 0;   ///< version numbers with any trace
  uint64_t intact_versions = 0;    ///< committed + valid after this pass
  std::vector<uint64_t> torn_versions;     ///< orphan artifacts deleted
  std::vector<uint64_t> quarantined;       ///< corrupt, marker written
  std::vector<std::string> quarantine_reasons;  ///< parallel to above
  std::vector<uint64_t> removed_versions;  ///< retired by retain-N
  /// Intact versions retain-N would have removed but a pin kept.
  std::vector<uint64_t> pinned_kept;
  uint64_t latest_before = 0;  ///< latest pointer on entry (0 = none/bad)
  uint64_t latest_after = 0;   ///< latest pointer on exit (0 = none)
  bool latest_repaired = false;

  /// One line, stable field order, for logs and the chaos harness.
  std::string Summary() const;
};

/// One-shot collector for a registry directory. Single-threaded; run it
/// from the same thread that owns the registry (typically between
/// batches or after a crash-recovery Load fails).
class RegistryGc {
 public:
  RegistryGc(io::SimDisk* disk, std::string dir, GcOptions options = {});

  /// Scans, repairs, and compacts. Returns the report; a non-ok status
  /// means the pass could not complete (I/O error mid-scan) and the
  /// directory is still safe — everything already done was atomic.
  StatusOr<GcReport> Run();

 private:
  /// How far past the last trace (and the latest pointer) the upward
  /// scan probes before concluding the version space is exhausted.
  static constexpr uint64_t kScanGapLimit = 2;

  /// Validates version's committed manifest + artifacts. Returns OK when
  /// intact, kCorruption (with the reason) when the version must be
  /// quarantined, other codes on unexpected I/O failure.
  Status ValidateVersion(uint64_t version);

  io::SimDisk* disk_;
  GcOptions options_;
  /// Path scheme only; GC never loads models.
  ModelRegistry paths_;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_REGISTRY_GC_H_
