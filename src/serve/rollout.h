#ifndef HPA_SERVE_ROLLOUT_H_
#define HPA_SERVE_ROLLOUT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/router.h"

/// \file
/// Automated canary lifecycle over a ModelRouter: the controller that
/// turns "a new version landed in the registry" into "it is serving all
/// traffic" (or "it never served a byte") without a human watching
/// dashboards. The hot-swap path (server.h TryHotSwap) validates a
/// candidate with a fixed canary-probe set at swap time; this controller
/// instead rides *live routed traffic* through three gates:
///
///   kIdle ──Begin──▶ kShadow ──agreement──▶ kCanary ──windows──▶ kPromoted
///                       │                      │
///                       └──────rollback────────┴───────▶ kRolledBack
///
///  * **shadow**: the candidate joins the router as a weight-0 shadow
///    route. It scores the router's deterministic sample of served
///    traffic; answers are compared against the serving model but never
///    returned. Gate: at least `shadow_min_compares` comparisons AND
///    agreement ≥ `shadow_min_agree`. Agreement below the gate once the
///    sample is big enough rolls back — the candidate never took
///    traffic.
///  * **canary**: the candidate takes a small weight slice
///    (`canary_weight` vs the stable's `stable_weight`) and must stay
///    healthy for `canary_windows` consecutive executor-clock windows of
///    `canary_window_sec`. Per window, from metrics *deltas* (snapshot
///    at window start vs end): served ≥ `canary_min_served`, failure
///    rate ≤ `canary_max_fail_rate`, and (when enabled) window mean
///    latency ≤ `canary_max_latency_ratio` × the stable's window mean.
///    Any breached window rolls back immediately.
///  * **promote**: the candidate takes the full combined weight and the
///    stable parks at weight 0 — still routed, still pinned, so an
///    operator can flip back instantly; removing it is the caller's
///    call.
///  * **rollback**: the candidate route is removed (its queue drains
///    through the router) and the stable's pre-rollout weight is
///    restored. Terminal, like kPromoted: one controller drives one
///    candidate through one lifecycle.
///
/// Determinism: Tick() decisions are pure functions of the router's
/// counters and the caller-supplied executor clock — no wall time, no
/// RNG. Driven from the same single thread as the router. The
/// controller holds no durable state: after a crash, the registry (plus
/// LatestVersionMatching) is the source of truth and a fresh
/// router/controller reconverges — the chaos soak exercises exactly
/// that at every state.

namespace hpa::serve {

/// Lifecycle position of one candidate rollout.
enum class RolloutState {
  kIdle,        ///< no candidate in flight
  kShadow,      ///< candidate scoring shadow traffic, gate pending
  kCanary,      ///< candidate holds the canary slice, windows running
  kPromoted,    ///< terminal: candidate took the stable's traffic
  kRolledBack,  ///< terminal: candidate removed, stable restored
};

/// Stable lowercase name:
/// "idle" | "shadow" | "canary" | "promoted" | "rolled-back".
std::string_view RolloutStateName(RolloutState state);

/// Gate tuning. Defaults suit the bit-identical-refit case (agreement
/// should be ~1.0; any real disagreement is signal).
struct RolloutOptions {
  /// Weight the stable model holds while the canary runs.
  uint32_t stable_weight = 90;

  /// Weight slice the candidate takes in kCanary.
  uint32_t canary_weight = 10;

  /// Shadow gate: minimum comparisons before the gate can decide.
  uint64_t shadow_min_compares = 32;

  /// Shadow gate: minimum agreed/scored fraction to enter canary.
  double shadow_min_agree = 0.98;

  /// Canary window length, executor-clock seconds.
  double canary_window_sec = 0.250;

  /// Consecutive healthy windows required to promote.
  int canary_windows = 2;

  /// Minimum requests the candidate must have served in a window for the
  /// window to count (an idle window neither promotes nor rolls back —
  /// it restarts).
  uint64_t canary_min_served = 8;

  /// Maximum (failed + shed) / terminal fraction per window.
  double canary_max_fail_rate = 0.10;

  /// Window-mean latency bound: candidate ≤ ratio × stable. 0 disables
  /// (the right default on the simulated executor, where both models'
  /// virtual latencies are near-identical by construction).
  double canary_max_latency_ratio = 0.0;
};

/// Drives one candidate model through shadow → canary → promote /
/// rollback on a live router. See file comment for the state machine.
class RolloutController {
 public:
  /// `router` is borrowed and must outlive the controller.
  RolloutController(ModelRouter* router, const RolloutOptions& options);

  /// Starts a rollout: `stable_version` must already be routed with
  /// weight > 0; `candidate` joins as a weight-0 shadow route. Only from
  /// kIdle (kFailedPrecondition otherwise — one lifecycle per
  /// controller).
  Status Begin(uint64_t stable_version,
               std::shared_ptr<const ModelHandle> candidate);

  /// Advances the state machine against the router's current counters at
  /// executor-clock `now_sec`. Call it from the serving event loop
  /// (e.g. after each Poll). No-op in kIdle and the terminal states.
  Status Tick(double now_sec);

  /// Operator abort: rolls back from any live state (no-op when idle or
  /// already terminal). `reason` lands in last_transition().
  Status Abort(std::string_view reason);

  RolloutState state() const { return state_; }
  uint64_t stable_version() const { return stable_version_; }
  uint64_t candidate_version() const { return candidate_version_; }

  /// Healthy canary windows completed so far.
  int healthy_windows() const { return healthy_windows_; }

  /// Why the last transition happened — gate values at the decision.
  const std::string& last_transition() const { return last_transition_; }

  /// One line, stable field order, for logs and chaos digests.
  std::string Summary() const;

 private:
  /// Candidate-route stats, or null if the route vanished.
  bool CandidateStats(RouteStats* out) const;
  bool StableStats(RouteStats* out) const;

  /// Enters kCanary: reweights and snapshots window baselines.
  Status EnterCanary(double now_sec);

  /// Terminal rollback: removes the candidate, restores the stable.
  Status RollBack(std::string reason);

  /// Terminal promote: candidate takes the combined weight.
  Status Promote(std::string reason);

  /// Opens a fresh canary window at `now_sec` (baseline snapshots).
  void StartWindow(double now_sec);

  ModelRouter* router_;
  RolloutOptions options_;
  RolloutState state_ = RolloutState::kIdle;
  uint64_t stable_version_ = 0;
  uint64_t candidate_version_ = 0;
  uint32_t stable_restore_weight_ = 0;  ///< stable's weight before Begin
  double window_start_sec_ = 0.0;
  int healthy_windows_ = 0;
  ServeMetrics::Snapshot candidate_base_;  ///< window-start baselines
  ServeMetrics::Snapshot stable_base_;
  std::string last_transition_ = "idle";
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_ROLLOUT_H_
