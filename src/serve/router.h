#ifndef HPA_SERVE_ROUTER_H_
#define HPA_SERVE_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ops/exec_context.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "serve/server.h"

/// \file
/// Multi-model serving router: weighted / canary traffic splitting across
/// N concurrently-loaded registry versions. The workflow layer optimizes
/// ONE plan end to end; this is the serving-side analogue of adaptive
/// operator selection — several fitted models (homogeneous A/B refits or
/// heterogeneous ModelKinds) serve side by side, each behind its own
/// refcounted snapshot handle, admission queue, circuit breaker, and
/// metrics, with a dispatch layer in front that must stay off the hot
/// path.
///
/// Dispatch discipline (the Tupleware lesson — routing must cost less
/// than the work it routes):
///
///  * Every route decision is ONE StableHash64 of the request identity
///    plus a walk of a tiny cumulative-weight array. No locks, no RNG
///    state, no clock reads.
///  * The split is a *pure function* of (salt, request id, weight table):
///    `StableHash64("route-<salt>-<id>") % total_weight` picks an integer
///    bucket, and route i owns exactly `weight_i` consecutive buckets (in
///    route insertion order). The same id therefore routes identically at
///    any worker count, in any submission order, and on every replay —
///    the fault injector's determinism discipline applied to dispatch. A
///    soak replay is bit-identical by construction, and an exit-time
///    audit can recompute the expected per-route counts from the id
///    stream alone (the weight-conservation invariant).
///  * weight = 0 routes receive no served traffic at all — they are
///    either parked (an old version kept loadable) or *shadow* routes.
///
/// Shadow scoring: a shadow route scores a deterministic sample of the
/// routed traffic (`StableHash64("shadow-<salt>-<id>")` against the
/// sample fraction — again pure, worker-count-invariant) and its answers
/// are compared against the served response but never returned. Shadow
/// work runs serially on the router thread against the shadow handle
/// only: it never touches a served server's queue, breaker, metrics, or
/// the executor clock, so enabling it cannot change one served byte or
/// disposition (the shadow-isolation invariant the chaos soak enforces
/// by digest comparison).
///
/// Each route wraps its own AnalyticsServer, so the per-model robustness
/// layer comes for free and *isolated*: a fault storm on one model opens
/// that model's breaker while the other routes keep serving. Per-route
/// ServerOptions overrides allow asymmetric tuning (e.g. a tighter
/// breaker on a canary).
///
/// Pinning: when a VersionPinSet is attached, every route's version is
/// pinned for the lifetime of the route — RunGc's retain-N compaction
/// skips pinned versions, so a router can keep serving an old version
/// long after newer publishes would have compacted it away.
///
/// Threading contract: like AnalyticsServer, the router is driven by one
/// thread; parallelism happens inside each route's batch regions.

namespace hpa::serve {

/// Counters for one route, scraped point-in-time.
struct RouteStats {
  uint64_t version = 0;
  ModelKind kind = ModelKind::kKMeans;
  uint32_t weight = 0;
  bool shadow = false;

  /// Submit() calls dispatched to this route (admitted + rejected).
  uint64_t routed = 0;

  ServeMetrics::Snapshot metrics;

  // Per-model breaker state-transition counters (from the route server's
  // scoring breaker; all zero when the breaker is disabled).
  uint64_t breaker_opens = 0;
  uint64_t breaker_half_opens = 0;
  uint64_t breaker_closes = 0;
  uint64_t breaker_probes = 0;
  uint64_t breaker_sheds = 0;

  // Shadow-scoring counters (shadow routes only).
  uint64_t shadow_scored = 0;     ///< comparisons actually performed
  uint64_t shadow_agreed = 0;     ///< shadow answer == served answer
  uint64_t shadow_disagreed = 0;  ///< shadow answer != served answer
  uint64_t shadow_skipped = 0;    ///< sampled but never served (shed/failed)

  /// One line, stable field order, for logs and bench JSON tails.
  std::string Summary() const;
};

/// Router tuning.
struct RouterOptions {
  /// Default per-route server tuning (queue bound, batching, breaker,
  /// retry, lanes). AddRoute may override per route.
  ServerOptions server;

  /// Fraction of routed request ids shadow-scored when shadow routes
  /// exist, selected by pure hash of the id. 1.0 = every served request,
  /// 0.0 = shadow routes are parked.
  double shadow_sample = 1.0;

  /// Routing-stream salt: folds into both the bucket hash and the shadow
  /// sample hash, so two routers over the same id stream draw independent
  /// splits.
  uint64_t salt = 0;
};

/// Deterministic weighted traffic splitter over per-model serving
/// engines. See file comment for the dispatch contract.
class ModelRouter {
 public:
  /// The context's executor is required and shared by every route's
  /// server (parallelism lives inside batch regions, so routes never run
  /// concurrently with each other).
  ModelRouter(const ops::ExecContext& ctx, const RouterOptions& options);

  /// Unpins every remaining route.
  ~ModelRouter();

  ModelRouter(const ModelRouter&) = delete;
  ModelRouter& operator=(const ModelRouter&) = delete;

  /// Adds a route serving `handle` with integer `weight` (0 = no served
  /// traffic). `shadow` routes must have weight 0. `server_options`, when
  /// non-null, overrides the router-level defaults for this route only.
  /// The handle's version must be unique among routes
  /// (kFailedPrecondition otherwise; version is the route key). Pins the
  /// version when a pin set is attached.
  Status AddRoute(std::shared_ptr<const ModelHandle> handle, uint32_t weight,
                  bool shadow = false,
                  const ServerOptions* server_options = nullptr);

  /// Retunes one route's weight. Shadow routes may not take weight
  /// (promote them by SetShadow(false) first).
  Status SetWeight(uint64_t version, uint32_t weight);

  /// Flips a route in or out of shadow mode. Entering shadow requires
  /// weight 0.
  Status SetShadow(uint64_t version, bool shadow);

  /// Drains the route's server (flushing its queue; the responses are
  /// delivered on the next Poll), unpins the version, and removes the
  /// route. kNotFound for an unknown version.
  Status RemoveRoute(uint64_t version);

  /// The version that would serve request `id` under the current weight
  /// table, or 0 when no route carries weight. Pure — exposed so tests
  /// and exit-time audits can recompute the split independently of any
  /// traffic actually sent.
  uint64_t RouteVersionFor(uint64_t id) const;

  /// Whether request `id` falls in the deterministic shadow sample.
  /// Pure; independent of whether shadow routes currently exist.
  bool ShadowSampled(uint64_t id) const;

  /// Dispatches to the owning route's server. kFailedPrecondition when
  /// no route carries weight. Rejection/admission semantics are the
  /// route server's own (per-route bounded queue).
  Status Submit(uint64_t id, std::string body, double deadline_sec = 0.0,
                Lane lane = Lane::kInteractive);

  /// Ticks every route's flush policy (route insertion order) and runs
  /// shadow comparisons for newly served responses. Every admitted
  /// request surfaces in exactly one Poll/FlushAll/Drain return.
  std::vector<Response> Poll();

  /// Force-flushes every route.
  std::vector<Response> FlushAll();

  /// Drains every route (terminal for the route servers) and abandons
  /// unserved shadow samples.
  std::vector<Response> Drain();

  /// Point-in-time stats for every route, in route insertion order.
  std::vector<RouteStats> Scrape() const;

  /// Sum of served weights (shadow routes contribute 0).
  uint32_t total_weight() const { return total_weight_; }

  size_t num_routes() const { return routes_.size(); }

  /// Versions currently routed, insertion order.
  std::vector<uint64_t> versions() const;

  /// Route server for `version` (inspection; null when unknown).
  const AnalyticsServer* server(uint64_t version) const;

  /// Attach a pin set (not owned). Existing routes are pinned
  /// immediately; future routes pin on AddRoute and unpin on removal.
  void set_pins(VersionPinSet* pins);
  VersionPinSet* pins() const { return pins_; }

  const RouterOptions& options() const { return options_; }

 private:
  struct Route {
    uint64_t version = 0;
    uint32_t weight = 0;
    bool shadow = false;
    uint64_t routed = 0;
    uint64_t shadow_scored = 0;
    uint64_t shadow_agreed = 0;
    uint64_t shadow_disagreed = 0;
    uint64_t shadow_skipped = 0;
    std::shared_ptr<const ModelHandle> handle;
    std::unique_ptr<ServeMetrics> metrics;
    std::unique_ptr<AnalyticsServer> server;
  };

  /// Rebuilds the cumulative-bucket table after any weight change.
  void RebuildBuckets();

  Route* FindRoute(uint64_t version);
  const Route* FindRoute(uint64_t version) const;

  /// Shadow-compares served responses in `batch` (and retires the
  /// pending bodies of terminally-unserved sampled requests).
  void ShadowCompare(const std::vector<Response>& batch);

  bool has_shadow_routes() const;

  ops::ExecContext ctx_;
  RouterOptions options_;
  std::vector<std::unique_ptr<Route>> routes_;  ///< insertion order
  /// Exclusive cumulative weight bounds, parallel to the weighted subset
  /// of routes_: bucket b serves route weighted_[i] where
  /// b < cum_[i] first holds.
  std::vector<uint32_t> cum_;
  std::vector<Route*> weighted_;
  uint32_t total_weight_ = 0;
  /// Bodies of sampled requests awaiting their served response.
  std::map<uint64_t, std::string> shadow_pending_;
  /// Drain output of removed routes, delivered on the next Poll.
  std::vector<Response> pending_removed_;
  VersionPinSet* pins_ = nullptr;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_ROUTER_H_
