#ifndef HPA_SERVE_METRICS_H_
#define HPA_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"

/// \file
/// Serving-side observability. Counters touched inside the batch's
/// parallel region live in cache-line-separated per-worker slots (no
/// synchronization on the hot path, same discipline as the sharded
/// dictionary partials) and are folded on scrape; counters touched only
/// by the submitting thread are plain fields. Latencies land in a shared
/// log-bucket histogram (common/stats.h LogHistogram) priced on the
/// executor clock, so percentiles are virtual-time deterministic on the
/// simulated executor and directly comparable with bench JSON tails.

namespace hpa::serve {

/// Metrics sink for one AnalyticsServer. Submit/record calls follow the
/// server's threading contract: everything except the per-worker hooks is
/// called from the single submitting thread.
class ServeMetrics {
 public:
  /// `workers` sizes the per-worker slot array (executor worker count).
  explicit ServeMetrics(int workers);

  // --- submitting-thread hooks ---------------------------------------

  /// A request arrived at admission (before the queue-full check).
  void OnSubmitted(size_t queue_depth_after);

  /// A request bounced off the full queue.
  void OnRejected() { ++rejected_; }

  /// A batch was cut: `size` requests left the queue together.
  void OnBatchFlushed(size_t size) {
    ++batches_;
    batched_requests_ += size;
  }

  /// Terminal accounting; `latency_sec` is finish - submit on the
  /// executor clock. Failed requests also record latency (time to give
  /// up is real time the client waited).
  void OnCompleted(double latency_sec);
  void OnDeadlineMiss(double latency_sec);
  void OnFailed(double latency_sec);

  // --- parallel-region hooks (worker-indexed, wait-free) --------------

  void OnDocScored(int worker);
  void OnRetries(int worker, uint64_t attempts);
  void OnFault(int worker);

  /// Point-in-time fold of every counter. Cheap; callable while the
  /// server is live (per-worker slots are read with relaxed loads).
  struct Snapshot {
    uint64_t submitted = 0;  ///< admission attempts (admitted + rejected)
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t deadline_misses = 0;
    uint64_t failed = 0;
    uint64_t batches = 0;
    uint64_t batched_requests = 0;
    uint64_t max_queue_depth = 0;
    uint64_t docs_scored = 0;  ///< scoring executions inside batch regions
    uint64_t retries = 0;      ///< extra scoring attempts beyond the first
    uint64_t faults = 0;       ///< requests that exhausted the retry budget
    double mean_batch_occupancy = 0.0;  ///< batched_requests / batches

    double latency_p50_sec = 0.0;
    double latency_p95_sec = 0.0;
    double latency_p99_sec = 0.0;
    double latency_max_sec = 0.0;
    double latency_mean_sec = 0.0;
    uint64_t latency_count = 0;

    /// One line, stable field order — the serving twin of a bench tail.
    std::string Summary() const;
  };
  Snapshot Scrape() const;

  /// The underlying latency histogram (for merging across servers or
  /// quantiles beyond the snapshot's fixed three).
  const LogHistogram& latency_histogram() const { return latency_; }

 private:
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> docs_scored{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> faults{0};
  };

  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t deadline_misses_ = 0;
  uint64_t failed_ = 0;
  uint64_t batches_ = 0;
  uint64_t batched_requests_ = 0;
  uint64_t max_queue_depth_ = 0;
  LogHistogram latency_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_METRICS_H_
