#ifndef HPA_SERVE_METRICS_H_
#define HPA_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "serve/request.h"

/// \file
/// Serving-side observability. Counters touched inside the batch's
/// parallel region live in cache-line-separated per-worker slots (no
/// synchronization on the hot path, same discipline as the sharded
/// dictionary partials) and are folded on scrape; counters touched only
/// by the submitting thread are plain fields. Latencies land in a shared
/// log-bucket histogram (common/stats.h LogHistogram) priced on the
/// executor clock, so percentiles are virtual-time deterministic on the
/// simulated executor and directly comparable with bench JSON tails.

namespace hpa::serve {

/// Metrics sink for one AnalyticsServer. Submit/record calls follow the
/// server's threading contract: everything except the per-worker hooks is
/// called from the single submitting thread.
class ServeMetrics {
 public:
  /// `workers` sizes the per-worker slot array (executor worker count).
  explicit ServeMetrics(int workers);

  // --- submitting-thread hooks ---------------------------------------

  /// A request arrived at admission (before the queue-full check).
  void OnSubmitted(size_t queue_depth_after,
                   Lane lane = Lane::kInteractive);

  /// A request bounced off the full queue.
  void OnRejected(Lane lane = Lane::kInteractive) {
    ++rejected_;
    ++lane_rejected_[LaneIndex(lane)];
  }

  /// An admitted request was dropped with a bounded error response:
  /// preempted out of the batch lane by an interactive arrival, or cut
  /// into a batch while the circuit breaker was open.
  void OnShed(Lane lane) {
    ++shed_;
    ++lane_shed_[LaneIndex(lane)];
  }

  /// A shed decided by the open circuit breaker (subset of OnShed calls;
  /// callers invoke both).
  void OnBreakerShed() { ++breaker_shed_; }

  /// Hot-swap accounting: a validated snapshot replaced the live model /
  /// a candidate failed its canary gate and was rolled back.
  void OnHotSwap() { ++hot_swaps_; }
  void OnSwapRollback() { ++swap_rollbacks_; }

  /// A batch was cut: `size` requests left the queue together.
  void OnBatchFlushed(size_t size) {
    ++batches_;
    batched_requests_ += size;
  }

  /// Terminal accounting; `latency_sec` is finish - submit on the
  /// executor clock. Failed requests also record latency (time to give
  /// up is real time the client waited). Shed requests do NOT land in
  /// the latency histogram — it measures served work, and a shed is a
  /// refusal — they are counted by OnShed above.
  void OnCompleted(double latency_sec, Lane lane = Lane::kInteractive);
  void OnDeadlineMiss(double latency_sec, Lane lane = Lane::kInteractive);
  void OnFailed(double latency_sec, Lane lane = Lane::kInteractive);

  // --- parallel-region hooks (worker-indexed, wait-free) --------------

  void OnDocScored(int worker);
  void OnRetries(int worker, uint64_t attempts);
  void OnFault(int worker);

  /// Point-in-time fold of every counter. Cheap; callable while the
  /// server is live (per-worker slots are read with relaxed loads).
  struct Snapshot {
    uint64_t submitted = 0;  ///< admission attempts (admitted + rejected)
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t deadline_misses = 0;
    uint64_t failed = 0;
    uint64_t batches = 0;
    uint64_t batched_requests = 0;
    uint64_t max_queue_depth = 0;
    uint64_t docs_scored = 0;  ///< scoring executions inside batch regions
    uint64_t retries = 0;      ///< extra scoring attempts beyond the first
    uint64_t faults = 0;       ///< requests that exhausted the retry budget
    double mean_batch_occupancy = 0.0;  ///< batched_requests / batches

    // Robustness-layer counters (all zero when lanes/breaker/hot-swap are
    // not in play, so pre-existing consumers see unchanged numbers).
    uint64_t shed = 0;          ///< admitted then dropped with an error
    uint64_t breaker_shed = 0;  ///< sheds decided by the open breaker
    uint64_t hot_swaps = 0;     ///< live-model replacements
    uint64_t swap_rollbacks = 0;  ///< canary-failed candidates rejected
    /// Per-lane splits, indexed by Lane (0 = interactive, 1 = batch).
    uint64_t lane_submitted[2] = {0, 0};
    uint64_t lane_rejected[2] = {0, 0};
    uint64_t lane_completed[2] = {0, 0};
    uint64_t lane_misses[2] = {0, 0};
    uint64_t lane_failed[2] = {0, 0};
    uint64_t lane_shed[2] = {0, 0};

    double latency_p50_sec = 0.0;
    double latency_p95_sec = 0.0;
    double latency_p99_sec = 0.0;
    double latency_max_sec = 0.0;
    double latency_mean_sec = 0.0;
    uint64_t latency_count = 0;

    /// One line, stable field order — the serving twin of a bench tail.
    std::string Summary() const;
  };
  Snapshot Scrape() const;

  /// The underlying latency histogram (for merging across servers or
  /// quantiles beyond the snapshot's fixed three).
  const LogHistogram& latency_histogram() const { return latency_; }

 private:
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> docs_scored{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> faults{0};
  };

  static size_t LaneIndex(Lane lane) {
    return lane == Lane::kBatch ? 1 : 0;
  }

  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t deadline_misses_ = 0;
  uint64_t failed_ = 0;
  uint64_t shed_ = 0;
  uint64_t breaker_shed_ = 0;
  uint64_t hot_swaps_ = 0;
  uint64_t swap_rollbacks_ = 0;
  uint64_t batches_ = 0;
  uint64_t batched_requests_ = 0;
  uint64_t max_queue_depth_ = 0;
  uint64_t lane_submitted_[2] = {0, 0};
  uint64_t lane_rejected_[2] = {0, 0};
  uint64_t lane_completed_[2] = {0, 0};
  uint64_t lane_misses_[2] = {0, 0};
  uint64_t lane_failed_[2] = {0, 0};
  uint64_t lane_shed_[2] = {0, 0};
  LogHistogram latency_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_METRICS_H_
