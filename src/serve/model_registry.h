#ifndef HPA_SERVE_MODEL_REGISTRY_H_
#define HPA_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/status.h"
#include "containers/sparse_vector.h"
#include "io/packed_corpus.h"
#include "io/sim_disk.h"
#include "ops/exec_context.h"
#include "ops/kmeans.h"
#include "ops/naive_bayes.h"
#include "ops/tfidf.h"
#include "ops/tfidf_vectorizer.h"
#include "text/tokenizer.h"

/// \file
/// Versioned registry of fitted serving artifacts: the frozen vocabulary +
/// document frequencies (the TF/IDF model) and the final K-means centroid
/// matrix. Fit once with the batch workflow, snapshot, classify forever.
///
/// Snapshots reuse the checkpoint discipline (core/checkpoint.h): every
/// artifact is CRC-32'd, the per-version *manifest* is the commit record
/// listing artifact paths, sizes, and checksums, and all files go through
/// the disk's atomic whole-file path (temp + rename) — a crash mid-publish
/// leaves either no manifest or a complete one, never a torn version. The
/// `latest` pointer is written only after the manifest commits.
///
///   hpa-model-registry v1
///   version <V>
///   fingerprint <hex64>        — ModelFingerprint of the fit config
///   tfidf <path> <bytes> <crc32 hex8>
///   centroids <path> <bytes> <crc32 hex8>
///   terms <T>
///   clusters <K>
///   documents <N>
///   end
///
/// The registry is kind-heterogeneous: a directory may interleave K-means
/// and Naive Bayes versions. The "centroids" manifest line names the
/// *scorer* artifact slot whatever the kind — for kNaiveBayes versions the
/// file holds a serialized "hpa-nb-model v1" and the "clusters" count is
/// the class count — so GC, torn-publish repair, and quarantine treat
/// every version identically. The artifact content is self-describing by
/// header line, and the kind is part of the config fingerprint, so a
/// loader can never mistake one kind for the other.
///
/// The fingerprint covers everything that determines what a score vector
/// *means*: tokenizer shape, stemming, TF/IDF weighting options, and the
/// cluster count — plus, for non-K-means kinds, the kind tag and its
/// hyperparameters (appended only for those kinds, so every pre-existing
/// K-means fingerprint is unchanged). Load() recomputes it from the
/// caller's serving config
/// and rejects the snapshot (kFailedPrecondition) on any drift — a model
/// fitted with stemming is never silently served without it. Artifacts
/// whose bytes fail the manifest CRC are rejected as kCorruption; nothing
/// is ever silently loaded.
///
/// Centroid floats are serialized as IEEE-754 bit patterns (8 hex digits
/// each), so a reloaded model classifies bit-identically to the fitted
/// in-memory handle — the round-trip guarantee the serve tests pin down.

namespace hpa::serve {

/// Refcounted pin table guarding live-routed registry versions against
/// GC compaction. Retain-N protects only the newest N intact versions;
/// a router serving a 90/10 split (or a rollout holding a parked
/// stable) references versions retain-N would happily remove. Each
/// route pins its version for the route's lifetime; RegistryGc::Run
/// consults the set (GcOptions::pins) and skips pinned versions during
/// compaction — quarantine of genuinely corrupt versions still applies,
/// pinning protects bytes from *removal*, not from being wrong.
///
/// Refcounted, not boolean: two routers (live + replay twin) may pin
/// the same version independently, and the version stays protected
/// until the last one unpins. Same threading contract as the rest of
/// the serving layer: driven from one thread, not synchronized.
class VersionPinSet {
 public:
  /// Increments `version`'s pin count (version 0 is ignored — it is the
  /// "never scored" sentinel, not a registry version).
  void Pin(uint64_t version);

  /// Decrements; the entry disappears at zero. Unpinning an unpinned
  /// version is a no-op (destructor-ordering tolerance).
  void Unpin(uint64_t version);

  bool IsPinned(uint64_t version) const;

  /// Pin count for `version` (0 = unpinned).
  uint64_t PinCount(uint64_t version) const;

  /// Pinned versions, ascending (the GC report's audit view).
  std::vector<uint64_t> Pinned() const;

  size_t size() const { return counts_.size(); }

 private:
  std::map<uint64_t, uint64_t> counts_;
};

/// What a served model *is*. A registry directory may hold versions of
/// different kinds side by side (heterogeneous serving); the kind is part
/// of the config fingerprint, so a K-means consumer can never load a
/// Naive Bayes snapshot by accident.
enum class ModelKind {
  kKMeans,      ///< nearest-centroid scorer (unsupervised fit)
  kNaiveBayes,  ///< multinomial NB classifier (labeled-corpus fit)
};

std::string_view ModelKindName(ModelKind kind);

/// Everything that must match between fit time and serving time.
struct ModelConfig {
  text::TokenizerOptions tokenizer;

  /// Porter-stem tokens (must match the fit's ExecContext::stem_tokens).
  bool stem_tokens = false;

  ops::TfidfOptions tfidf;

  /// Number of K-means clusters (the paper uses 8; kKMeans only).
  int clusters = 8;

  /// Kind of scorer this config fits and serves.
  ModelKind kind = ModelKind::kKMeans;

  /// NB smoothing (kNaiveBayes only).
  double nb_alpha = 1.0;
};

/// Stable identity of `config` (StableHash64 over its canonical text).
uint64_t ModelFingerprint(const ModelConfig& config);

/// A loaded model: frozen vectorizer + a scorer of the config's kind
/// (dense centroids, or a Naive Bayes model), ready to score.
/// Immutable after construction; safe to share across parallel chunks.
class ModelHandle {
 public:
  /// K-means handle (kind = kKMeans).
  ModelHandle(uint64_t version, ModelConfig config,
              ops::TfidfVectorizer vectorizer,
              std::vector<std::vector<float>> centroids);

  /// Naive Bayes handle (kind = kNaiveBayes).
  ModelHandle(uint64_t version, ModelConfig config,
              ops::TfidfVectorizer vectorizer, ops::NaiveBayesModel nb);

  /// Scores `body` with the frozen vocabulary and returns the nearest
  /// centroid (kKMeans; ties to the lowest index) or the predicted class
  /// id (kNaiveBayes; ties to the lowest id). `distance_out`, if
  /// non-null, receives the squared L2 distance for kKMeans and 0.0 for
  /// kNaiveBayes. Pure: no mutable state, so batched and one-at-a-time
  /// calls are bit-identical.
  uint32_t Classify(std::string_view body, double* distance_out = nullptr) const;

  /// The TF/IDF score vector alone (what Classify computes internally).
  containers::SparseVector Vectorize(std::string_view body) const;

  uint64_t version() const { return version_; }
  uint64_t fingerprint() const { return fingerprint_; }
  ModelKind kind() const { return config_.kind; }
  const ModelConfig& config() const { return config_; }
  const ops::TfidfVectorizer& vectorizer() const { return vectorizer_; }
  const std::vector<std::vector<float>>& centroids() const {
    return centroids_;
  }
  /// The NB scorer (empty-default for kKMeans handles).
  const ops::NaiveBayesModel& nb_model() const { return nb_; }

 private:
  uint64_t version_;
  uint64_t fingerprint_;
  ModelConfig config_;
  ops::TfidfVectorizer vectorizer_;
  std::vector<std::vector<float>> centroids_;
  /// ||c||² per centroid, precomputed once (NearestCentroid recomputes
  /// them per call — at serving rates that is the dominant cost).
  std::vector<double> centroid_sq_norms_;
  ops::NaiveBayesModel nb_;
};

/// Versioned snapshot store rooted at `dir` on one disk. Versions are
/// dense from 1; publishing never mutates an existing version's files.
class ModelRegistry {
 public:
  ModelRegistry(io::SimDisk* disk, std::string dir);

  /// Fits the fused workflow on `corpus` under `config` — TF/IDF
  /// transform, then the scorer the config's kind names (sparse K-means,
  /// or Naive Bayes trained on the corpus's v3 label column) — publishes
  /// the artifacts as the next version, and returns the live handle. The
  /// context's tokenizer/stemming fields are overridden from `config` so
  /// the snapshot's fingerprint is the truth about how the model was
  /// fitted; `kmeans.k` is likewise forced to `config.clusters`
  /// (kNaiveBayes ignores `kmeans` and fails kInvalidArgument on an
  /// unlabeled corpus).
  StatusOr<ModelHandle> Fit(const ops::ExecContext& ctx,
                            const io::PackedCorpusReader& corpus,
                            const ModelConfig& config,
                            ops::KMeansOptions kmeans = {});

  /// Loads `version` (0 = latest), validating the manifest, the config
  /// fingerprint, and every artifact CRC. kNotFound when the version (or
  /// any registry state) does not exist, kFailedPrecondition when
  /// `config` differs from the fit config or the version carries a GC
  /// quarantine marker, kCorruption on bad bytes, kUnavailable when the
  /// attached load breaker is open.
  StatusOr<ModelHandle> Load(const ModelConfig& config,
                             uint64_t version = 0) const;

  /// Highest published version, or kNotFound for an empty registry.
  StatusOr<uint64_t> LatestVersion() const;

  /// Highest published version whose fit config fingerprint matches
  /// `config`, or kNotFound when no version of that identity exists. The
  /// per-kind latest pointer for heterogeneous registries: the global
  /// `latest` may belong to another kind after an interleaved publish, so
  /// kind-specific consumers (a hot-swap poller serving NB while K-means
  /// versions land) resolve their own lineage through this instead.
  /// Quarantined and torn versions are skipped, not errors.
  StatusOr<uint64_t> LatestVersionMatching(const ModelConfig& config) const;

  /// Circuit breaker consulted by Load (not owned; null = no breaker).
  /// A registry whose backing store is corrupting or erroring repeatedly
  /// then sheds load attempts for the breaker's open window instead of
  /// re-reading (and re-CRC-ing) doomed artifacts on every poll tick.
  /// Breaker time comes from the disk's executor clock (0.0 when the
  /// disk has no executor attached).
  void set_load_breaker(CircuitBreaker* breaker) { load_breaker_ = breaker; }
  CircuitBreaker* load_breaker() const { return load_breaker_; }

  /// Crash hook for the torn-publish tests and the chaos harness, in the
  /// spirit of ExecContext::crash_after_node: when >= 0, Publish aborts
  /// (Status kInternal) immediately after completing step N of its
  /// commit sequence — 0 = tfidf artifact written, 1 = centroid artifact
  /// written, 2 = manifest committed, 3 = latest pointer moved (i.e. a
  /// crash after a fully successful publish). Deterministic, no signals,
  /// virtual-clock friendly. -1 disables.
  void set_crash_after_publish_step(int step) {
    crash_after_publish_step_ = step;
  }

  const std::string& dir() const { return dir_; }

  // Path helpers shared with RegistryGc (all relative to the disk root).
  std::string ManifestPath(uint64_t version) const;
  std::string TfidfPath(uint64_t version) const;
  std::string CentroidsPath(uint64_t version) const;
  std::string QuarantinePath(uint64_t version) const;
  std::string LatestPath() const;

 private:
  /// Load minus the breaker wrapper (the actual manifest/CRC work).
  StatusOr<ModelHandle> LoadUnguarded(const ModelConfig& config,
                                      uint64_t version) const;

  /// Writes artifacts, then the manifest, then the latest pointer.
  /// `scorer_bytes` is the serialized scorer artifact — "hpa-centroids
  /// v1" or "hpa-nb-model v1", both self-describing by header line — and
  /// `scorer_count` its cluster/class count for the manifest.
  Status Publish(uint64_t version, const ModelConfig& config,
                 const ops::TfidfVectorizer& vectorizer,
                 const std::string& scorer_bytes, size_t scorer_count,
                 uint64_t num_documents);

  io::SimDisk* disk_;
  std::string dir_;
  CircuitBreaker* load_breaker_ = nullptr;
  int crash_after_publish_step_ = -1;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_MODEL_REGISTRY_H_
