#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/checksum.h"
#include "common/string_util.h"

namespace hpa::serve {

AnalyticsServer::AnalyticsServer(const ops::ExecContext& ctx,
                                 const ModelHandle* model,
                                 const ServerOptions& options,
                                 ServeMetrics* metrics)
    : ctx_(ctx),
      // Borrowed handle: aliasing shared_ptr with a no-op deleter, so the
      // hot-swap path can later replace it with an owned handle without
      // changing the batch-snapshot discipline.
      model_(model, [](const ModelHandle*) {}),
      options_(options),
      metrics_(metrics),
      breaker_(options.breaker) {
  if (options_.inline_threshold > 0) {
    ctx_.executor->set_inline_threshold(options_.inline_threshold);
  }
}

Status AnalyticsServer::Submit(uint64_t id, std::string body,
                               double deadline_sec, Lane lane) {
  if (state_ == State::kStopped) {
    return Status::FailedPrecondition(StrFormat(
        "server is drained: request %llu rejected (Submit after Drain)",
        static_cast<unsigned long long>(id)));
  }
  if (!options_.priority_lanes) lane = Lane::kInteractive;
  size_t depth = queue_depth();
  if (depth >= options_.queue_capacity) {
    // Overload. An interactive arrival may reclaim a slot by preempting
    // the NEWEST queued batch request (newest = least sunk wait time);
    // the victim gets a terminal kShed response on the next delivery.
    // Everything else bounces.
    bool preempt = options_.priority_lanes && lane == Lane::kInteractive &&
                   !batch_queue_.empty();
    if (!preempt) {
      if (metrics_ != nullptr) {
        metrics_->OnSubmitted(depth, lane);
        metrics_->OnRejected(lane);
      }
      return Status::FailedPrecondition(
          StrFormat("admission queue full (%zu/%zu): request %llu rejected",
                    depth, options_.queue_capacity,
                    static_cast<unsigned long long>(id)));
    }
    Pending victim = std::move(batch_queue_.back());
    batch_queue_.pop_back();
    Response shed;
    shed.id = victim.id;
    shed.outcome = RequestOutcome::kShed;
    shed.lane = victim.lane;
    shed.submit_time_sec = victim.submit_time_sec;
    shed.finish_time_sec = ctx_.executor->Now();
    shed.status = Status::Unavailable(
        "preempted by an interactive arrival under overload");
    pending_sheds_.push_back(std::move(shed));
    if (metrics_ != nullptr) metrics_->OnShed(victim.lane);
  }
  Pending p{id, std::move(body), deadline_sec, ctx_.executor->Now(), lane};
  if (options_.priority_lanes && lane == Lane::kBatch) {
    batch_queue_.push_back(std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  if (metrics_ != nullptr) metrics_->OnSubmitted(queue_depth(), lane);
  return Status::OK();
}

void AnalyticsServer::TakePendingSheds(std::vector<Response>* out) {
  if (pending_sheds_.empty()) return;
  out->insert(out->begin(), std::make_move_iterator(pending_sheds_.begin()),
              std::make_move_iterator(pending_sheds_.end()));
  pending_sheds_.clear();
}

std::vector<Response> AnalyticsServer::Poll() {
  std::vector<Response> out;
  if (state_ == State::kStopped || queue_depth() == 0) {
    TakePendingSheds(&out);
    return out;
  }
  bool at_ceiling = queue_depth() >= options_.max_batch;
  double now = ctx_.executor->Now();
  bool stale = false;
  if (!queue_.empty() &&
      now - queue_.front().submit_time_sec >= options_.max_wait_sec) {
    stale = true;
  }
  if (!batch_queue_.empty() &&
      now - batch_queue_.front().submit_time_sec >= options_.max_wait_sec) {
    stale = true;
  }
  if (at_ceiling || stale) out = FlushBatch();
  TakePendingSheds(&out);
  return out;
}

std::vector<Response> AnalyticsServer::FlushAll() {
  std::vector<Response> all;
  while (queue_depth() > 0) {
    std::vector<Response> batch = FlushBatch();
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  TakePendingSheds(&all);
  return all;
}

std::vector<Response> AnalyticsServer::Drain() {
  std::vector<Response> all = FlushAll();
  state_ = State::kStopped;
  return all;
}

Status AnalyticsServer::TryHotSwap(
    const ModelRegistry& registry, const ModelConfig& config,
    const std::vector<std::string>& canary_bodies) {
  // Follow this config's own lineage, not the global latest pointer: in a
  // heterogeneous registry the newest version may belong to another model
  // kind (a Naive Bayes publish must not trip a K-means server into a
  // rollback, and vice versa).
  StatusOr<uint64_t> latest = registry.LatestVersionMatching(config);
  if (!latest.ok()) return latest.status();
  if (*latest <= model_->version()) return Status::OK();  // already current

  StatusOr<ModelHandle> candidate = registry.Load(config, *latest);
  if (!candidate.ok()) {
    // Torn, corrupt, quarantined, or drifted candidate: the live model
    // keeps serving. This IS the rollback — nothing was swapped in.
    if (metrics_ != nullptr) metrics_->OnSwapRollback();
    return candidate.status();
  }

  // Canary gate: the candidate must agree with the live model on the
  // probe set. Distances are not compared — centroid geometry legitimately
  // differs between fits; assignment agreement is the serving contract.
  size_t agree = 0;
  for (const std::string& body : canary_bodies) {
    if (candidate->Classify(body) == model_->Classify(body)) ++agree;
  }
  double agreement =
      canary_bodies.empty()
          ? 1.0
          : static_cast<double>(agree) /
                static_cast<double>(canary_bodies.size());
  if (agreement < options_.canary_min_agree) {
    if (metrics_ != nullptr) metrics_->OnSwapRollback();
    return Status::FailedPrecondition(StrFormat(
        "hot-swap canary failed for version %llu: agreement %.4f < %.4f "
        "on %zu probes; rolled back to version %llu",
        static_cast<unsigned long long>(*latest), agreement,
        options_.canary_min_agree, canary_bodies.size(),
        static_cast<unsigned long long>(model_->version())));
  }

  // Swap: future batches snapshot the new handle; any batch mid-flight
  // holds its own refcount on the old one.
  model_ = std::make_shared<const ModelHandle>(std::move(*candidate));
  if (metrics_ != nullptr) metrics_->OnHotSwap();
  return Status::OK();
}

std::vector<Response> AnalyticsServer::FlushBatch() {
  size_t n = std::min(queue_depth(), options_.max_batch);
  if (n == 0) return {};
  // Interactive lane drains first; batch backfills the remaining slots.
  std::vector<Pending> batch;
  batch.reserve(n);
  while (batch.size() < n && !queue_.empty()) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  while (batch.size() < n && !batch_queue_.empty()) {
    batch.push_back(std::move(batch_queue_.front()));
    batch_queue_.pop_front();
  }
  if (metrics_ != nullptr) metrics_->OnBatchFlushed(n);

  // Per-batch model snapshot: a hot-swap during (or between) batches
  // never changes the model a cut batch scores against.
  std::shared_ptr<const ModelHandle> model = model_;

  // Deadline triage happens serially *before* the region on the
  // pre-region clock: inside a region the simulated executor's Now() is
  // frozen, so evaluating deadlines there would diverge across executors.
  double batch_start = ctx_.executor->Now();
  std::vector<char> skip(n, 0);  ///< 1 = expired, 2 = breaker-shed
  size_t live = 0;
  std::vector<Response> responses(n);
  for (size_t i = 0; i < n; ++i) {
    responses[i].id = batch[i].id;
    responses[i].lane = batch[i].lane;
    responses[i].submit_time_sec = batch[i].submit_time_sec;
    if (batch[i].deadline_sec > 0 && batch_start > batch[i].deadline_sec) {
      skip[i] = 1;
      responses[i].outcome = RequestOutcome::kDeadlineMiss;
      responses[i].status = Status::FailedPrecondition(
          "deadline expired before the batch started");
    }
  }
  // Breaker admission, serial and in slot order, on the batch-start
  // clock — after triage so expired requests never consume probe budget.
  if (options_.breaker_enabled) {
    for (size_t i = 0; i < n; ++i) {
      if (skip[i] != 0) continue;
      uint64_t token = StableHash64(StrFormat(
          "req-%llu", static_cast<unsigned long long>(batch[i].id)));
      if (!breaker_.Allow(token, batch_start)) {
        skip[i] = 2;
        responses[i].outcome = RequestOutcome::kShed;
        responses[i].status = Status::Unavailable(StrFormat(
            "circuit breaker %s: request shed",
            std::string(BreakerStateName(breaker_.state())).c_str()));
        if (metrics_ != nullptr) {
          metrics_->OnShed(batch[i].lane);
          metrics_->OnBreakerShed();
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (skip[i] == 0) ++live;
  }

  // One region for the whole batch; per-worker quarantine lists merged in
  // slot order afterwards (the sharded-reduction discipline).
  int workers = ctx_.executor->num_workers();
  std::vector<QuarantineList> worker_quarantine(
      static_cast<size_t>(workers < 1 ? 1 : workers));
  parallel::WorkHint hint{0, "serve-batch"};
  ctx_.executor->ParallelFor(0, n, 1, hint, [&](int worker, size_t b,
                                                size_t e) {
    for (size_t i = b; i < e; ++i) {
      if (skip[i] != 0) {
        // Nothing to score. If *no* request in the batch is live the
        // region itself is wasted motion — cancel the remaining chunks.
        if (live == 0) ctx_.executor->RequestStop();
        continue;
      }
      const Pending& p = batch[i];
      std::string key = StrFormat("req-%llu",
                                  static_cast<unsigned long long>(p.id));
      uint64_t token = StableHash64(key);
      int attempts = 1;
      Status s = RetryCall(
          options_.retry, token,
          [&](int attempt) -> Status {
            if (options_.injector != nullptr) {
              io::FaultDecision d = options_.injector->Decide(
                  "serve-score", key, /*offset=*/0, attempt);
              switch (d.kind) {
                case io::FaultKind::kTransient:
                case io::FaultKind::kPermanent:
                  return Status::IoError("injected scoring fault on " + key);
                case io::FaultKind::kCorruption:
                  return Status::Corruption("injected score corruption on " +
                                            key);
                case io::FaultKind::kLatencySpike:
                  ctx_.executor->ChargeIoTime(d.extra_latency_sec, 1);
                  break;
                case io::FaultKind::kNone:
                  break;
              }
            }
            double distance = 0.0;
            responses[i].cluster = model->Classify(p.body, &distance);
            responses[i].distance = distance;
            return Status::OK();
          },
          [&](double backoff_sec) {
            ctx_.executor->ChargeIoTime(backoff_sec, 1);
          },
          &attempts);
      if (metrics_ != nullptr && attempts > 1) {
        metrics_->OnRetries(worker, static_cast<uint64_t>(attempts - 1));
      }
      if (s.ok()) {
        responses[i].outcome = RequestOutcome::kOk;
        if (metrics_ != nullptr) metrics_->OnDocScored(worker);
      } else {
        responses[i].outcome = RequestOutcome::kFailed;
        responses[i].status = s;
        if (metrics_ != nullptr) metrics_->OnFault(worker);
        if (options_.fault_policy == FaultPolicy::kRetryThenSkip) {
          worker_quarantine[static_cast<size_t>(worker)].Add(key, s,
                                                             attempts);
        } else {
          // Fail fast: poison the rest of the batch region.
          ctx_.executor->RequestStop();
        }
      }
      if (ctx_.executor->stop_requested()) return;
    }
  });

  double finish = ctx_.executor->Now();

  QuarantineList merged;
  for (QuarantineList& q : worker_quarantine) merged.MergeFrom(std::move(q));
  merged.SortById();
  if (ctx_.quarantine != nullptr) {
    for (const QuarantineEntry& entry : merged.entries) {
      ctx_.quarantine->Add(entry.id, entry.cause, entry.attempts);
    }
  }
  quarantine_.MergeFrom(std::move(merged));

  for (size_t i = 0; i < n; ++i) {
    Response& r = responses[i];
    r.finish_time_sec = finish;
    if (r.outcome == RequestOutcome::kPending) {
      // A live request whose chunk never ran: the region was cancelled
      // (fail-fast fault) before reaching it.
      r.outcome = RequestOutcome::kFailed;
      r.status = Status::Internal("batch aborted before this request ran");
    } else if (r.outcome == RequestOutcome::kOk &&
               batch[i].deadline_sec > 0 &&
               finish > batch[i].deadline_sec) {
      // Scored, but the answer came back after the SLO: still returned,
      // but accounted as a miss.
      r.outcome = RequestOutcome::kDeadlineMiss;
    }
    // Only answers actually produced by a model carry its version (the
    // chaos harness audits served versions against committed ones).
    if (skip[i] == 0 && (r.outcome == RequestOutcome::kOk ||
                         r.outcome == RequestOutcome::kDeadlineMiss)) {
      r.model_version = model->version();
    }
    // Outcome feedback to the breaker, serially in slot order: expired
    // and shed slots never report (they were not admitted attempts).
    if (options_.breaker_enabled && skip[i] == 0) {
      if (r.outcome == RequestOutcome::kFailed) {
        breaker_.OnFailure(finish);
      } else {
        breaker_.OnSuccess(finish);
      }
    }
    if (metrics_ != nullptr) {
      double latency = finish - r.submit_time_sec;
      switch (r.outcome) {
        case RequestOutcome::kOk:
          metrics_->OnCompleted(latency, r.lane);
          break;
        case RequestOutcome::kDeadlineMiss:
          metrics_->OnDeadlineMiss(latency, r.lane);
          break;
        case RequestOutcome::kFailed:
          metrics_->OnFailed(latency, r.lane);
          break;
        case RequestOutcome::kShed:
        case RequestOutcome::kPending:
          break;  // sheds were counted at decision time
      }
    }
  }
  return responses;
}

}  // namespace hpa::serve
