#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/checksum.h"
#include "common/string_util.h"

namespace hpa::serve {

AnalyticsServer::AnalyticsServer(const ops::ExecContext& ctx,
                                 const ModelHandle* model,
                                 const ServerOptions& options,
                                 ServeMetrics* metrics)
    : ctx_(ctx), model_(model), options_(options), metrics_(metrics) {
  if (options_.inline_threshold > 0) {
    ctx_.executor->set_inline_threshold(options_.inline_threshold);
  }
}

Status AnalyticsServer::Submit(uint64_t id, std::string body,
                               double deadline_sec) {
  if (queue_.size() >= options_.queue_capacity) {
    if (metrics_ != nullptr) {
      metrics_->OnSubmitted(queue_.size());
      metrics_->OnRejected();
    }
    return Status::FailedPrecondition(
        StrFormat("admission queue full (%zu/%zu): request %llu rejected",
                  queue_.size(), options_.queue_capacity,
                  static_cast<unsigned long long>(id)));
  }
  queue_.push_back(Pending{id, std::move(body), deadline_sec,
                           ctx_.executor->Now()});
  if (metrics_ != nullptr) metrics_->OnSubmitted(queue_.size());
  return Status::OK();
}

std::vector<Response> AnalyticsServer::Poll() {
  if (queue_.empty()) return {};
  bool at_ceiling = queue_.size() >= options_.max_batch;
  bool stale = ctx_.executor->Now() - queue_.front().submit_time_sec >=
               options_.max_wait_sec;
  if (!at_ceiling && !stale) return {};
  return FlushBatch();
}

std::vector<Response> AnalyticsServer::Drain() {
  std::vector<Response> all;
  while (!queue_.empty()) {
    std::vector<Response> batch = FlushBatch();
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return all;
}

std::vector<Response> AnalyticsServer::FlushBatch() {
  size_t n = std::min(queue_.size(), options_.max_batch);
  if (n == 0) return {};
  std::vector<Pending> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (metrics_ != nullptr) metrics_->OnBatchFlushed(n);

  // Deadline triage happens serially *before* the region on the
  // pre-region clock: inside a region the simulated executor's Now() is
  // frozen, so evaluating deadlines there would diverge across executors.
  double batch_start = ctx_.executor->Now();
  std::vector<char> expired(n, 0);
  size_t live = 0;
  std::vector<Response> responses(n);
  for (size_t i = 0; i < n; ++i) {
    responses[i].id = batch[i].id;
    responses[i].submit_time_sec = batch[i].submit_time_sec;
    if (batch[i].deadline_sec > 0 && batch_start > batch[i].deadline_sec) {
      expired[i] = 1;
      responses[i].outcome = RequestOutcome::kDeadlineMiss;
      responses[i].status = Status::FailedPrecondition(
          "deadline expired before the batch started");
    } else {
      ++live;
    }
  }

  // One region for the whole batch; per-worker quarantine lists merged in
  // slot order afterwards (the sharded-reduction discipline).
  int workers = ctx_.executor->num_workers();
  std::vector<QuarantineList> worker_quarantine(
      static_cast<size_t>(workers < 1 ? 1 : workers));
  parallel::WorkHint hint{0, "serve-batch"};
  ctx_.executor->ParallelFor(0, n, 1, hint, [&](int worker, size_t b,
                                                size_t e) {
    for (size_t i = b; i < e; ++i) {
      if (expired[i] != 0) {
        // Nothing to score. If *no* request in the batch is live the
        // region itself is wasted motion — cancel the remaining chunks.
        if (live == 0) ctx_.executor->RequestStop();
        continue;
      }
      const Pending& p = batch[i];
      std::string key = StrFormat("req-%llu",
                                  static_cast<unsigned long long>(p.id));
      uint64_t token = StableHash64(key);
      int attempts = 1;
      Status s = RetryCall(
          options_.retry, token,
          [&](int attempt) -> Status {
            if (options_.injector != nullptr) {
              io::FaultDecision d = options_.injector->Decide(
                  "serve-score", key, /*offset=*/0, attempt);
              switch (d.kind) {
                case io::FaultKind::kTransient:
                case io::FaultKind::kPermanent:
                  return Status::IoError("injected scoring fault on " + key);
                case io::FaultKind::kCorruption:
                  return Status::Corruption("injected score corruption on " +
                                            key);
                case io::FaultKind::kLatencySpike:
                  ctx_.executor->ChargeIoTime(d.extra_latency_sec, 1);
                  break;
                case io::FaultKind::kNone:
                  break;
              }
            }
            double distance = 0.0;
            responses[i].cluster = model_->Classify(p.body, &distance);
            responses[i].distance = distance;
            return Status::OK();
          },
          [&](double backoff_sec) {
            ctx_.executor->ChargeIoTime(backoff_sec, 1);
          },
          &attempts);
      if (metrics_ != nullptr && attempts > 1) {
        metrics_->OnRetries(worker, static_cast<uint64_t>(attempts - 1));
      }
      if (s.ok()) {
        responses[i].outcome = RequestOutcome::kOk;
        if (metrics_ != nullptr) metrics_->OnDocScored(worker);
      } else {
        responses[i].outcome = RequestOutcome::kFailed;
        responses[i].status = s;
        if (metrics_ != nullptr) metrics_->OnFault(worker);
        if (options_.fault_policy == FaultPolicy::kRetryThenSkip) {
          worker_quarantine[static_cast<size_t>(worker)].Add(key, s,
                                                             attempts);
        } else {
          // Fail fast: poison the rest of the batch region.
          ctx_.executor->RequestStop();
        }
      }
      if (ctx_.executor->stop_requested()) return;
    }
  });

  double finish = ctx_.executor->Now();

  QuarantineList merged;
  for (QuarantineList& q : worker_quarantine) merged.MergeFrom(std::move(q));
  merged.SortById();
  if (ctx_.quarantine != nullptr) {
    for (const QuarantineEntry& entry : merged.entries) {
      ctx_.quarantine->Add(entry.id, entry.cause, entry.attempts);
    }
  }
  quarantine_.MergeFrom(std::move(merged));

  for (size_t i = 0; i < n; ++i) {
    Response& r = responses[i];
    r.finish_time_sec = finish;
    if (r.outcome == RequestOutcome::kPending) {
      // A live request whose chunk never ran: the region was cancelled
      // (fail-fast fault) before reaching it.
      r.outcome = RequestOutcome::kFailed;
      r.status = Status::Internal("batch aborted before this request ran");
    } else if (r.outcome == RequestOutcome::kOk &&
               batch[i].deadline_sec > 0 &&
               finish > batch[i].deadline_sec) {
      // Scored, but the answer came back after the SLO: still returned,
      // but accounted as a miss.
      r.outcome = RequestOutcome::kDeadlineMiss;
    }
    if (metrics_ != nullptr) {
      double latency = finish - r.submit_time_sec;
      switch (r.outcome) {
        case RequestOutcome::kOk:
          metrics_->OnCompleted(latency);
          break;
        case RequestOutcome::kDeadlineMiss:
          metrics_->OnDeadlineMiss(latency);
          break;
        case RequestOutcome::kFailed:
          metrics_->OnFailed(latency);
          break;
        case RequestOutcome::kPending:
          break;
      }
    }
  }
  return responses;
}

}  // namespace hpa::serve
