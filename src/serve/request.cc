#include "serve/request.h"

namespace hpa::serve {

std::string_view RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kPending:
      return "pending";
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kDeadlineMiss:
      return "deadline-miss";
    case RequestOutcome::kFailed:
      return "failed";
    case RequestOutcome::kShed:
      return "shed";
  }
  return "unknown";
}

std::string_view LaneName(Lane lane) {
  switch (lane) {
    case Lane::kInteractive:
      return "interactive";
    case Lane::kBatch:
      return "batch";
  }
  return "unknown";
}

}  // namespace hpa::serve
