#include "serve/request.h"

namespace hpa::serve {

std::string_view RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kPending:
      return "pending";
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kDeadlineMiss:
      return "deadline-miss";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

}  // namespace hpa::serve
