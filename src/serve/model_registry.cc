#include "serve/model_registry.h"

#include <charconv>
#include <cstring>
#include <utility>

#include "common/checksum.h"
#include "common/string_util.h"
#include "io/file_io.h"

namespace hpa::serve {

void VersionPinSet::Pin(uint64_t version) {
  if (version == 0) return;
  ++counts_[version];
}

void VersionPinSet::Unpin(uint64_t version) {
  auto it = counts_.find(version);
  if (it == counts_.end()) return;
  if (--it->second == 0) counts_.erase(it);
}

bool VersionPinSet::IsPinned(uint64_t version) const {
  return counts_.count(version) > 0;
}

uint64_t VersionPinSet::PinCount(uint64_t version) const {
  auto it = counts_.find(version);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<uint64_t> VersionPinSet::Pinned() const {
  std::vector<uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& [version, count] : counts_) out.push_back(version);
  return out;
}

namespace {

bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out, /*base=*/16);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseHex32(std::string_view s, uint32_t* out) {
  uint64_t v = 0;
  if (!ParseHex64(s, &v) || v > 0xFFFFFFFFull) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

/// Canonical one-line-per-field text hashed by ModelFingerprint. Doubles
/// are printed with %.17g so distinct values never collide textually.
/// The kind line (and its hyperparameters) is appended only for
/// non-K-means kinds, so every fingerprint computed before the family
/// grew — all of them K-means — is unchanged.
std::string CanonicalConfigText(const ModelConfig& c) {
  std::string text = StrFormat(
      "hpa-model-config v1\n"
      "tokenizer %llu %llu %d\n"
      "stem %d\n"
      "tfidf %u %.17g %d %d\n"
      "clusters %d\n",
      static_cast<unsigned long long>(c.tokenizer.min_token_length),
      static_cast<unsigned long long>(c.tokenizer.max_token_length),
      c.tokenizer.lowercase ? 1 : 0, c.stem_tokens ? 1 : 0, c.tfidf.min_df,
      c.tfidf.max_df_ratio, c.tfidf.sublinear_tf ? 1 : 0,
      c.tfidf.normalize ? 1 : 0, c.clusters);
  if (c.kind != ModelKind::kKMeans) {
    text += StrFormat("kind %s\nalpha %.17g\n",
                      std::string(ModelKindName(c.kind)).c_str(), c.nb_alpha);
  }
  return text;
}

/// IEEE-754 bit-exact centroid serialization ("hpa-centroids v1").
std::string SerializeCentroids(
    const std::vector<std::vector<float>>& centroids) {
  size_t cols = centroids.empty() ? 0 : centroids[0].size();
  std::string out = "hpa-centroids v1\nclusters ";
  AppendUint(out, centroids.size());
  out += "\ncols ";
  AppendUint(out, cols);
  out += '\n';
  for (const auto& row : centroids) {
    for (size_t i = 0; i < row.size(); ++i) {
      uint32_t bits = 0;
      std::memcpy(&bits, &row[i], sizeof(bits));
      if (i > 0) out += ' ';
      out += StrFormat("%08x", bits);
    }
    out += '\n';
  }
  return out;
}

StatusOr<std::vector<std::vector<float>>> ParseCentroids(
    std::string_view text, const std::string& path) {
  std::vector<std::string_view> lines = Split(text, '\n');
  if (lines.size() < 3 || Trim(lines[0]) != "hpa-centroids v1") {
    return Status::Corruption("bad centroid header in " + path);
  }
  int64_t clusters = 0;
  int64_t cols = 0;
  if (!StartsWith(lines[1], "clusters ") ||
      !ParseInt64(lines[1].substr(9), &clusters) || clusters < 1) {
    return Status::Corruption("bad clusters line in " + path);
  }
  if (!StartsWith(lines[2], "cols ") ||
      !ParseInt64(lines[2].substr(5), &cols) || cols < 0 ||
      lines.size() < 3 + static_cast<size_t>(clusters)) {
    return Status::Corruption("bad cols line in " + path);
  }
  std::vector<std::vector<float>> centroids(
      static_cast<size_t>(clusters),
      std::vector<float>(static_cast<size_t>(cols), 0.0f));
  for (int64_t c = 0; c < clusters; ++c) {
    std::vector<std::string_view> words =
        Split(Trim(lines[3 + static_cast<size_t>(c)]), ' ');
    if (cols == 0) continue;
    if (words.size() != static_cast<size_t>(cols)) {
      return Status::Corruption(
          StrFormat("centroid %lld has %zu values, want %lld in %s",
                    static_cast<long long>(c), words.size(),
                    static_cast<long long>(cols), path.c_str()));
    }
    for (int64_t i = 0; i < cols; ++i) {
      uint32_t bits = 0;
      if (!ParseHex32(words[static_cast<size_t>(i)], &bits)) {
        return Status::Corruption(
            StrFormat("bad centroid value %lld/%lld in %s",
                      static_cast<long long>(c), static_cast<long long>(i),
                      path.c_str()));
      }
      float v = 0.0f;
      std::memcpy(&v, &bits, sizeof(v));
      centroids[static_cast<size_t>(c)][static_cast<size_t>(i)] = v;
    }
  }
  return centroids;
}

}  // namespace

std::string_view ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kKMeans:
      return "kmeans";
    case ModelKind::kNaiveBayes:
      return "nb";
  }
  return "unknown";
}

uint64_t ModelFingerprint(const ModelConfig& config) {
  return StableHash64(CanonicalConfigText(config));
}

ModelHandle::ModelHandle(uint64_t version, ModelConfig config,
                         ops::TfidfVectorizer vectorizer,
                         std::vector<std::vector<float>> centroids)
    : version_(version),
      fingerprint_(ModelFingerprint(config)),
      config_(std::move(config)),
      vectorizer_(std::move(vectorizer)),
      centroids_(std::move(centroids)) {
  config_.kind = ModelKind::kKMeans;
  centroid_sq_norms_.reserve(centroids_.size());
  for (const auto& c : centroids_) {
    double sq = 0.0;
    for (float x : c) sq += static_cast<double>(x) * x;
    centroid_sq_norms_.push_back(sq);
  }
}

ModelHandle::ModelHandle(uint64_t version, ModelConfig config,
                         ops::TfidfVectorizer vectorizer,
                         ops::NaiveBayesModel nb)
    : version_(version),
      fingerprint_(ModelFingerprint(config)),
      config_(std::move(config)),
      vectorizer_(std::move(vectorizer)),
      nb_(std::move(nb)) {
  config_.kind = ModelKind::kNaiveBayes;
}

containers::SparseVector ModelHandle::Vectorize(std::string_view body) const {
  return vectorizer_.Score(body, config_.tokenizer, config_.stem_tokens);
}

uint32_t ModelHandle::Classify(std::string_view body,
                               double* distance_out) const {
  containers::SparseVector v = Vectorize(body);
  if (config_.kind == ModelKind::kNaiveBayes) {
    if (distance_out != nullptr) *distance_out = 0.0;
    return nb_.Predict(v);
  }
  double best_d = 0.0;
  // Shared exact-kernel helper — the same scan (and tie-break order) the
  // K-means assignment step falls back to when a bound test fails.
  int best = ops::NearestCentroid(v, v.SquaredL2Norm(), centroids_,
                                  centroid_sq_norms_, &best_d);
  if (distance_out != nullptr) *distance_out = best_d;
  return static_cast<uint32_t>(best);
}

ModelRegistry::ModelRegistry(io::SimDisk* disk, std::string dir)
    : disk_(disk), dir_(std::move(dir)) {
  // SimDisk paths map onto a backing directory tree; the registry keeps
  // its artifacts under a subdirectory, which must exist before the first
  // temp-file write.
  (void)io::MakeDirs(disk_->root() + "/" + dir_);
}

std::string ModelRegistry::ManifestPath(uint64_t version) const {
  return StrFormat("%s/model-%llu.manifest", dir_.c_str(),
                   static_cast<unsigned long long>(version));
}

std::string ModelRegistry::TfidfPath(uint64_t version) const {
  return StrFormat("%s/model-%llu.tfidf", dir_.c_str(),
                   static_cast<unsigned long long>(version));
}

std::string ModelRegistry::CentroidsPath(uint64_t version) const {
  return StrFormat("%s/model-%llu.centroids", dir_.c_str(),
                   static_cast<unsigned long long>(version));
}

std::string ModelRegistry::QuarantinePath(uint64_t version) const {
  return StrFormat("%s/model-%llu.quarantined", dir_.c_str(),
                   static_cast<unsigned long long>(version));
}

std::string ModelRegistry::LatestPath() const { return dir_ + "/latest"; }

StatusOr<uint64_t> ModelRegistry::LatestVersion() const {
  if (!disk_->Exists(LatestPath())) {
    return Status::NotFound("model registry " + dir_ + " is empty");
  }
  HPA_ASSIGN_OR_RETURN(std::string text, disk_->ReadFile(LatestPath()));
  int64_t v = 0;
  if (!ParseInt64(Trim(text), &v) || v < 1) {
    return Status::Corruption("bad latest pointer in " + dir_);
  }
  return static_cast<uint64_t>(v);
}

StatusOr<uint64_t> ModelRegistry::LatestVersionMatching(
    const ModelConfig& config) const {
  HPA_ASSIGN_OR_RETURN(uint64_t latest, LatestVersion());
  const std::string want =
      StrFormat("fingerprint %016llx",
                static_cast<unsigned long long>(ModelFingerprint(config)));
  // Downward scan from the global latest: versions are dense from 1, so
  // the first manifest carrying this config's fingerprint is the newest
  // of its kind. Unreadable or torn manifests are skipped — GC's
  // business, not this lookup's.
  for (uint64_t v = latest; v >= 1; --v) {
    if (disk_->Exists(QuarantinePath(v))) continue;
    if (!disk_->Exists(ManifestPath(v))) continue;
    StatusOr<std::string> text = disk_->ReadFile(ManifestPath(v));
    if (!text.ok()) continue;
    for (std::string_view line : Split(*text, '\n')) {
      if (Trim(line) == want) return v;
    }
  }
  return Status::NotFound(StrFormat(
      "no version matching fingerprint %016llx in %s",
      static_cast<unsigned long long>(ModelFingerprint(config)),
      dir_.c_str()));
}

StatusOr<ModelHandle> ModelRegistry::Fit(const ops::ExecContext& ctx,
                                         const io::PackedCorpusReader& corpus,
                                         const ModelConfig& config,
                                         ops::KMeansOptions kmeans) {
  if (config.clusters < 1) {
    return Status::InvalidArgument("ModelConfig.clusters must be >= 1");
  }
  // The snapshot records `config` as the model's identity, so the fit must
  // actually use it: override the context's text-processing knobs and the
  // cluster count rather than trusting the caller to keep them in sync.
  ops::ExecContext fit_ctx = ctx;
  fit_ctx.tokenizer = config.tokenizer;
  fit_ctx.stem_tokens = config.stem_tokens;
  kmeans.k = config.clusters;

  HPA_ASSIGN_OR_RETURN(ops::TfidfResult tfidf,
                       ops::TfidfInMemory(fit_ctx, corpus, config.tfidf));
  uint64_t num_documents = tfidf.num_documents();

  uint64_t version = 1;
  StatusOr<uint64_t> latest = LatestVersion();
  if (latest.ok()) {
    version = *latest + 1;
  } else if (latest.status().code() != StatusCode::kNotFound) {
    return latest.status();
  }

  if (config.kind == ModelKind::kNaiveBayes) {
    // Supervised fit: labels come off the corpus index (v3 label column);
    // row i of the TF/IDF matrix is document i by construction.
    std::vector<std::string> labels(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) labels[i] = corpus.label(i);
    ops::NaiveBayesOptions nb_options;
    nb_options.alpha = config.nb_alpha;
    HPA_ASSIGN_OR_RETURN(
        ops::NaiveBayesModel nb,
        ops::TrainNaiveBayes(fit_ctx, tfidf.matrix, labels, nb_options));
    ops::TfidfVectorizer vectorizer(tfidf, config.tfidf);
    HPA_RETURN_IF_ERROR(Publish(version, config, vectorizer,
                                ops::SerializeNaiveBayesModel(nb),
                                nb.num_classes(), num_documents));
    return ModelHandle(version, config, std::move(vectorizer),
                       std::move(nb));
  }

  HPA_ASSIGN_OR_RETURN(ops::KMeansResult clusters,
                       ops::SparseKMeans(fit_ctx, tfidf.matrix, kmeans));
  ops::TfidfVectorizer vectorizer(tfidf, config.tfidf);
  HPA_RETURN_IF_ERROR(Publish(version, config, vectorizer,
                              SerializeCentroids(clusters.centroids),
                              clusters.centroids.size(), num_documents));
  return ModelHandle(version, config, std::move(vectorizer),
                     std::move(clusters.centroids));
}

Status ModelRegistry::Publish(uint64_t version, const ModelConfig& config,
                              const ops::TfidfVectorizer& vectorizer,
                              const std::string& scorer_bytes,
                              size_t scorer_count, uint64_t num_documents) {
  std::string tfidf_path = TfidfPath(version);
  std::string cent_path = CentroidsPath(version);
  // Deterministic torn-publish hook: abort between commit-sequence steps
  // exactly where a real crash could land. Each step's writes are atomic
  // (temp + rename), so the abort point is the only degree of freedom.
  auto crash_after = [this](int step) {
    return crash_after_publish_step_ == step
               ? Status::Internal(StrFormat(
                     "injected crash after publish step %d", step))
               : Status::OK();
  };

  // Artifacts first. Save() goes through the atomic whole-file path; the
  // re-read below prices the CRC honestly on the simulated device and
  // checksums the exact bytes a future Load() will see.
  HPA_RETURN_IF_ERROR(vectorizer.Save(disk_, tfidf_path));
  HPA_ASSIGN_OR_RETURN(std::string tfidf_bytes, disk_->ReadFile(tfidf_path));
  HPA_RETURN_IF_ERROR(crash_after(0));

  HPA_RETURN_IF_ERROR(disk_->WriteFile(cent_path, scorer_bytes));
  HPA_RETURN_IF_ERROR(crash_after(1));

  // Manifest is the commit record: until it lands (atomically), the
  // version does not exist.
  std::string manifest = "hpa-model-registry v1\nversion ";
  AppendUint(manifest, version);
  manifest += StrFormat(
      "\nfingerprint %016llx\n",
      static_cast<unsigned long long>(ModelFingerprint(config)));
  manifest += StrFormat("tfidf %s %llu %08x\n", tfidf_path.c_str(),
                        static_cast<unsigned long long>(tfidf_bytes.size()),
                        Crc32(tfidf_bytes));
  manifest += StrFormat("centroids %s %llu %08x\n", cent_path.c_str(),
                        static_cast<unsigned long long>(scorer_bytes.size()),
                        Crc32(scorer_bytes));
  manifest += "terms ";
  AppendUint(manifest, vectorizer.vocabulary_size());
  manifest += "\nclusters ";
  AppendUint(manifest, scorer_count);
  manifest += "\ndocuments ";
  AppendUint(manifest, num_documents);
  manifest += "\nend\n";
  HPA_RETURN_IF_ERROR(disk_->WriteFile(ManifestPath(version), manifest));
  HPA_RETURN_IF_ERROR(crash_after(2));

  // The latest pointer moves only after the manifest commits; a crash
  // between the two leaves the new version loadable by explicit number.
  std::string latest;
  AppendUint(latest, version);
  latest += '\n';
  HPA_RETURN_IF_ERROR(disk_->WriteFile(LatestPath(), latest));
  return crash_after(3);
}

StatusOr<ModelHandle> ModelRegistry::Load(const ModelConfig& config,
                                          uint64_t version) const {
  if (load_breaker_ == nullptr) return LoadUnguarded(config, version);

  // Breaker time is the disk's executor clock; a detached disk serves a
  // frozen clock (0.0), which still yields deterministic transitions.
  double now =
      disk_->executor() != nullptr ? disk_->executor()->Now() : 0.0;
  uint64_t token = StableHash64(
      StrFormat("registry-load %s %llu", dir_.c_str(),
                static_cast<unsigned long long>(version)));
  if (!load_breaker_->Allow(token, now)) {
    return Status::Unavailable(StrFormat(
        "registry %s load breaker open until t=%.6f", dir_.c_str(),
        load_breaker_->open_until_sec()));
  }
  StatusOr<ModelHandle> result = LoadUnguarded(config, version);
  if (result.ok()) {
    load_breaker_->OnSuccess(now);
  } else {
    StatusCode code = result.status().code();
    // Only store-health failures trip the breaker. kNotFound (empty
    // registry) and kFailedPrecondition (config drift / quarantine) are
    // caller errors the store cannot heal from, so shedding future loads
    // would mask them rather than protect anything.
    if (code == StatusCode::kCorruption || code == StatusCode::kIoError) {
      load_breaker_->OnFailure(now);
    }
  }
  return result;
}

StatusOr<ModelHandle> ModelRegistry::LoadUnguarded(const ModelConfig& config,
                                                   uint64_t version) const {
  if (version == 0) {
    HPA_ASSIGN_OR_RETURN(version, LatestVersion());
  }
  if (disk_->Exists(QuarantinePath(version))) {
    return Status::FailedPrecondition(StrFormat(
        "model version %llu in %s is quarantined (see %s)",
        static_cast<unsigned long long>(version), dir_.c_str(),
        QuarantinePath(version).c_str()));
  }
  std::string manifest_path = ManifestPath(version);
  if (!disk_->Exists(manifest_path)) {
    return Status::NotFound(
        StrFormat("model version %llu not found in %s",
                  static_cast<unsigned long long>(version), dir_.c_str()));
  }
  HPA_ASSIGN_OR_RETURN(std::string text, disk_->ReadFile(manifest_path));
  std::vector<std::string_view> lines = Split(text, '\n');
  if (lines.size() < 9 || Trim(lines[0]) != "hpa-model-registry v1") {
    return Status::Corruption("bad registry manifest header in " +
                              manifest_path);
  }

  uint64_t fingerprint = 0;
  std::string tfidf_path;
  std::string cent_path;
  uint64_t tfidf_bytes_want = 0;
  uint64_t cent_bytes_want = 0;
  uint32_t tfidf_crc_want = 0;
  uint32_t cent_crc_want = 0;
  int64_t manifest_clusters = -1;
  bool saw_end = false;
  for (size_t i = 1; i < lines.size() && !saw_end; ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
    } else if (StartsWith(line, "fingerprint ")) {
      if (!ParseHex64(line.substr(12), &fingerprint)) {
        return Status::Corruption("bad fingerprint in " + manifest_path);
      }
    } else if (StartsWith(line, "tfidf ") || StartsWith(line, "centroids ")) {
      bool is_tfidf = StartsWith(line, "tfidf ");
      std::vector<std::string_view> parts = Split(line, ' ');
      int64_t bytes = 0;
      uint32_t crc = 0;
      if (parts.size() != 4 || !ParseInt64(parts[2], &bytes) || bytes < 0 ||
          !ParseHex32(parts[3], &crc)) {
        return Status::Corruption("bad artifact line in " + manifest_path);
      }
      if (is_tfidf) {
        tfidf_path = std::string(parts[1]);
        tfidf_bytes_want = static_cast<uint64_t>(bytes);
        tfidf_crc_want = crc;
      } else {
        cent_path = std::string(parts[1]);
        cent_bytes_want = static_cast<uint64_t>(bytes);
        cent_crc_want = crc;
      }
    } else if (StartsWith(line, "clusters ")) {
      if (!ParseInt64(line.substr(9), &manifest_clusters) ||
          manifest_clusters < 1) {
        return Status::Corruption("bad clusters line in " + manifest_path);
      }
    }
    // version/terms/documents lines are informational.
  }
  if (!saw_end || tfidf_path.empty() || cent_path.empty()) {
    return Status::Corruption("incomplete registry manifest " +
                              manifest_path);
  }

  // Config drift check before touching any artifact: serving with a
  // different tokenizer/weighting/cluster count than the fit silently
  // produces garbage scores, so it is an error, not a fallback.
  uint64_t want = ModelFingerprint(config);
  if (fingerprint != want) {
    return Status::FailedPrecondition(StrFormat(
        "model version %llu was fitted under fingerprint %016llx but the "
        "serving config hashes to %016llx (tokenizer/stem/tfidf/clusters "
        "drift); refusing to load",
        static_cast<unsigned long long>(version),
        static_cast<unsigned long long>(fingerprint),
        static_cast<unsigned long long>(want)));
  }

  HPA_ASSIGN_OR_RETURN(std::string tfidf_bytes, disk_->ReadFile(tfidf_path));
  if (tfidf_bytes.size() != tfidf_bytes_want ||
      Crc32(tfidf_bytes) != tfidf_crc_want) {
    return Status::Corruption("tfidf artifact failed checksum: " + tfidf_path);
  }
  HPA_ASSIGN_OR_RETURN(std::string cent_bytes, disk_->ReadFile(cent_path));
  if (cent_bytes.size() != cent_bytes_want ||
      Crc32(cent_bytes) != cent_crc_want) {
    return Status::Corruption("centroid artifact failed checksum: " +
                              cent_path);
  }

  HPA_ASSIGN_OR_RETURN(ops::TfidfVectorizer vectorizer,
                       ops::TfidfVectorizer::Load(disk_, tfidf_path,
                                                  config.tfidf));
  // The fingerprint check above already proved the version's kind is the
  // config's kind; the scorer artifact parse is the belt to that brace.
  if (config.kind == ModelKind::kNaiveBayes) {
    HPA_ASSIGN_OR_RETURN(ops::NaiveBayesModel nb,
                         ops::ParseNaiveBayesModel(cent_bytes, cent_path));
    if (manifest_clusters >= 0 &&
        nb.num_classes() != static_cast<size_t>(manifest_clusters)) {
      return Status::Corruption("class count disagrees with manifest in " +
                                cent_path);
    }
    return ModelHandle(version, config, std::move(vectorizer),
                       std::move(nb));
  }
  HPA_ASSIGN_OR_RETURN(std::vector<std::vector<float>> centroids,
                       ParseCentroids(cent_bytes, cent_path));
  if (manifest_clusters >= 0 &&
      centroids.size() != static_cast<size_t>(manifest_clusters)) {
    return Status::Corruption("centroid count disagrees with manifest in " +
                              cent_path);
  }
  return ModelHandle(version, config, std::move(vectorizer),
                     std::move(centroids));
}

}  // namespace hpa::serve
