#include "serve/rollout.h"

#include <utility>

#include "common/string_util.h"

namespace hpa::serve {

namespace {

/// Counter delta, clamped at zero: a route swapped out and back in
/// mid-window (operator intervention) restarts its metrics below the
/// baseline, and a clamped window must read as idle, not as 2^64 serves.
uint64_t Delta(uint64_t now, uint64_t base) { return now >= base ? now - base : 0; }

/// Terminal responses a route produced in a window (completed requests,
/// late requests, and failures — everything that left the queue with an
/// answer or an error, minus sheds which are counted separately).
uint64_t WindowServed(const ServeMetrics::Snapshot& base,
                      const ServeMetrics::Snapshot& now) {
  return Delta(now.completed, base.completed) +
         Delta(now.deadline_misses, base.deadline_misses) +
         Delta(now.failed, base.failed);
}

uint64_t WindowBad(const ServeMetrics::Snapshot& base,
                   const ServeMetrics::Snapshot& now) {
  return Delta(now.failed, base.failed) + Delta(now.shed, base.shed);
}

/// Window mean latency from mean×count deltas (the histogram itself is
/// lifetime-cumulative; sums difference cleanly, means do not).
double WindowMeanLatency(const ServeMetrics::Snapshot& base,
                         const ServeMetrics::Snapshot& now) {
  if (now.latency_count <= base.latency_count) return 0.0;
  uint64_t count = now.latency_count - base.latency_count;
  double sum = now.latency_mean_sec * static_cast<double>(now.latency_count) -
               base.latency_mean_sec * static_cast<double>(base.latency_count);
  return sum / static_cast<double>(count);
}

}  // namespace

std::string_view RolloutStateName(RolloutState state) {
  switch (state) {
    case RolloutState::kIdle:
      return "idle";
    case RolloutState::kShadow:
      return "shadow";
    case RolloutState::kCanary:
      return "canary";
    case RolloutState::kPromoted:
      return "promoted";
    case RolloutState::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

RolloutController::RolloutController(ModelRouter* router,
                                     const RolloutOptions& options)
    : router_(router), options_(options) {
  if (options_.canary_weight < 1) options_.canary_weight = 1;
  if (options_.stable_weight < 1) options_.stable_weight = 1;
  if (options_.canary_windows < 1) options_.canary_windows = 1;
  if (options_.shadow_min_compares < 1) options_.shadow_min_compares = 1;
  if (options_.canary_window_sec <= 0.0) options_.canary_window_sec = 0.001;
}

Status RolloutController::Begin(uint64_t stable_version,
                                std::shared_ptr<const ModelHandle> candidate) {
  if (state_ != RolloutState::kIdle) {
    return Status::FailedPrecondition(
        StrFormat("rollout: Begin from state %s (one lifecycle per "
                  "controller)",
                  std::string(RolloutStateName(state_)).c_str()));
  }
  if (candidate == nullptr) {
    return Status::InvalidArgument("rollout: null candidate handle");
  }
  RouteStats stable;
  stable_version_ = stable_version;
  if (!StableStats(&stable) || stable.weight == 0) {
    stable_version_ = 0;
    return Status::FailedPrecondition(
        StrFormat("rollout: stable version %llu is not routed with weight",
                  static_cast<unsigned long long>(stable_version)));
  }
  candidate_version_ = candidate->version();
  Status added = router_->AddRoute(std::move(candidate), /*weight=*/0,
                                   /*shadow=*/true);
  if (!added.ok()) {
    stable_version_ = 0;
    candidate_version_ = 0;
    return added;
  }
  stable_restore_weight_ = stable.weight;
  state_ = RolloutState::kShadow;
  last_transition_ = StrFormat(
      "begin: candidate v%llu shadowing stable v%llu (weight %u held)",
      static_cast<unsigned long long>(candidate_version_),
      static_cast<unsigned long long>(stable_version_),
      stable_restore_weight_);
  return Status::OK();
}

Status RolloutController::Tick(double now_sec) {
  switch (state_) {
    case RolloutState::kIdle:
    case RolloutState::kPromoted:
    case RolloutState::kRolledBack:
      return Status::OK();
    case RolloutState::kShadow: {
      RouteStats candidate;
      if (!CandidateStats(&candidate)) {
        return RollBack("shadow: candidate route vanished");
      }
      if (candidate.shadow_scored < options_.shadow_min_compares) {
        return Status::OK();  // sample still too small to judge
      }
      double agree = static_cast<double>(candidate.shadow_agreed) /
                     static_cast<double>(candidate.shadow_scored);
      if (agree < options_.shadow_min_agree) {
        return RollBack(StrFormat(
            "shadow gate: agreement %.4f < %.4f over %llu compares", agree,
            options_.shadow_min_agree,
            static_cast<unsigned long long>(candidate.shadow_scored)));
      }
      last_transition_ = StrFormat(
          "shadow gate passed: agreement %.4f over %llu compares", agree,
          static_cast<unsigned long long>(candidate.shadow_scored));
      return EnterCanary(now_sec);
    }
    case RolloutState::kCanary: {
      if (now_sec - window_start_sec_ < options_.canary_window_sec) {
        return Status::OK();  // window still open
      }
      RouteStats candidate;
      RouteStats stable;
      if (!CandidateStats(&candidate) || !StableStats(&stable)) {
        return RollBack("canary: a routed version vanished");
      }
      uint64_t served = WindowServed(candidate_base_, candidate.metrics);
      uint64_t shed = Delta(candidate.metrics.shed, candidate_base_.shed);
      if (served + shed < options_.canary_min_served) {
        // Idle window: no verdict either way; restart the clock.
        StartWindow(now_sec);
        return Status::OK();
      }
      uint64_t bad = WindowBad(candidate_base_, candidate.metrics);
      double fail_rate =
          static_cast<double>(bad) / static_cast<double>(served + shed);
      if (fail_rate > options_.canary_max_fail_rate) {
        return RollBack(StrFormat(
            "canary gate: fail rate %.4f > %.4f (%llu bad / %llu terminal)",
            fail_rate, options_.canary_max_fail_rate,
            static_cast<unsigned long long>(bad),
            static_cast<unsigned long long>(served + shed)));
      }
      if (options_.canary_max_latency_ratio > 0.0) {
        double cand_mean = WindowMeanLatency(candidate_base_, candidate.metrics);
        double stable_mean = WindowMeanLatency(stable_base_, stable.metrics);
        if (stable_mean > 0.0 && cand_mean > 0.0 &&
            cand_mean > options_.canary_max_latency_ratio * stable_mean) {
          return RollBack(StrFormat(
              "canary gate: window mean latency %.6fs > %.2fx stable %.6fs",
              cand_mean, options_.canary_max_latency_ratio, stable_mean));
        }
      }
      ++healthy_windows_;
      if (healthy_windows_ >= options_.canary_windows) {
        return Promote(StrFormat(
            "canary gate passed: %d healthy windows (last: %llu served, "
            "fail rate %.4f)",
            healthy_windows_, static_cast<unsigned long long>(served),
            fail_rate));
      }
      last_transition_ = StrFormat(
          "canary window %d/%d healthy: %llu served, fail rate %.4f",
          healthy_windows_, options_.canary_windows,
          static_cast<unsigned long long>(served), fail_rate);
      StartWindow(now_sec);
      return Status::OK();
    }
  }
  return Status::OK();
}

Status RolloutController::Abort(std::string_view reason) {
  if (state_ != RolloutState::kShadow && state_ != RolloutState::kCanary) {
    return Status::OK();
  }
  return RollBack(StrFormat("aborted: %.*s", static_cast<int>(reason.size()),
                            reason.data()));
}

Status RolloutController::EnterCanary(double now_sec) {
  // Order matters: the candidate must leave shadow mode before it can
  // take weight, and the stable reweights in the same event-loop step so
  // no Submit ever sees a half-applied table.
  HPA_RETURN_IF_ERROR(router_->SetShadow(candidate_version_, false));
  HPA_RETURN_IF_ERROR(
      router_->SetWeight(stable_version_, options_.stable_weight));
  HPA_RETURN_IF_ERROR(
      router_->SetWeight(candidate_version_, options_.canary_weight));
  state_ = RolloutState::kCanary;
  healthy_windows_ = 0;
  StartWindow(now_sec);
  return Status::OK();
}

Status RolloutController::RollBack(std::string reason) {
  state_ = RolloutState::kRolledBack;
  last_transition_ = std::move(reason);
  // Restore first, then remove: the stable takes back full traffic
  // before the candidate's buckets disappear.
  Status restore =
      router_->SetWeight(stable_version_, stable_restore_weight_);
  Status removed = router_->RemoveRoute(candidate_version_);
  if (!restore.ok()) return restore;
  return removed;
}

Status RolloutController::Promote(std::string reason) {
  state_ = RolloutState::kPromoted;
  last_transition_ = std::move(reason);
  // Candidate takes the combined weight before the stable parks, so the
  // table never passes through total_weight == 0 (which would bounce
  // Submits).
  HPA_RETURN_IF_ERROR(router_->SetWeight(
      candidate_version_, options_.stable_weight + options_.canary_weight));
  HPA_RETURN_IF_ERROR(router_->SetWeight(stable_version_, 0));
  return Status::OK();
}

void RolloutController::StartWindow(double now_sec) {
  window_start_sec_ = now_sec;
  RouteStats candidate;
  RouteStats stable;
  if (CandidateStats(&candidate)) candidate_base_ = candidate.metrics;
  if (StableStats(&stable)) stable_base_ = stable.metrics;
}

bool RolloutController::CandidateStats(RouteStats* out) const {
  for (RouteStats& stats : router_->Scrape()) {
    if (stats.version == candidate_version_) {
      *out = std::move(stats);
      return true;
    }
  }
  return false;
}

bool RolloutController::StableStats(RouteStats* out) const {
  for (RouteStats& stats : router_->Scrape()) {
    if (stats.version == stable_version_) {
      *out = std::move(stats);
      return true;
    }
  }
  return false;
}

std::string RolloutController::Summary() const {
  return StrFormat(
      "state=%s stable=%llu candidate=%llu healthy_windows=%d last=\"%s\"",
      std::string(RolloutStateName(state_)).c_str(),
      static_cast<unsigned long long>(stable_version_),
      static_cast<unsigned long long>(candidate_version_), healthy_windows_,
      last_transition_.c_str());
}

}  // namespace hpa::serve
