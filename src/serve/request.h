#ifndef HPA_SERVE_REQUEST_H_
#define HPA_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file
/// Request/response types of the serving engine (serve/server.h). A
/// request carries one raw document body to classify against a fitted
/// model; the response reports the chosen cluster or why no answer was
/// produced (rejected at admission, deadline missed, scoring failed).

namespace hpa::serve {

/// Terminal state of a classify request.
enum class RequestOutcome {
  /// Not yet decided (internal; never returned to callers).
  kPending,

  /// Scored in time: `cluster`/`distance` are valid.
  kOk,

  /// Scored, but after the request's deadline — the answer is stale by
  /// SLO and counted as a miss, though cluster/distance are still filled.
  kDeadlineMiss,

  /// Per-document scoring failed after the retry budget (injected or real
  /// fault). Under FaultPolicy::kRetryThenSkip only this request fails;
  /// under kFailFast the rest of the batch aborts too.
  kFailed,
};

/// Stable lowercase name: "pending" | "ok" | "deadline-miss" | "failed".
std::string_view RequestOutcomeName(RequestOutcome outcome);

/// One admitted classify request, as queued.
struct Request {
  /// Caller-chosen identifier, echoed on the response.
  uint64_t id = 0;

  /// Raw document text (tokenized with the model's frozen config).
  std::string body;

  /// Absolute executor-clock deadline in seconds; <= 0 means none. A
  /// request whose deadline has passed when its batch starts is not
  /// scored at all; one that finishes late is scored but counted missed.
  double deadline_sec = 0.0;
};

/// One completed classify request.
struct Response {
  uint64_t id = 0;
  RequestOutcome outcome = RequestOutcome::kPending;

  /// Nearest centroid index (valid for kOk and kDeadlineMiss-when-scored).
  uint32_t cluster = 0;

  /// Squared L2 distance to that centroid.
  double distance = 0.0;

  /// Executor-clock submit/finish times; latency = finish - submit.
  double submit_time_sec = 0.0;
  double finish_time_sec = 0.0;

  /// Cause for kFailed (and for expired-unscored deadline misses).
  Status status;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_REQUEST_H_
