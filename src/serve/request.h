#ifndef HPA_SERVE_REQUEST_H_
#define HPA_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file
/// Request/response types of the serving engine (serve/server.h). A
/// request carries one raw document body to classify against a fitted
/// model; the response reports the chosen cluster or why no answer was
/// produced (rejected at admission, deadline missed, scoring failed).

namespace hpa::serve {

/// Terminal state of a classify request.
enum class RequestOutcome {
  /// Not yet decided (internal; never returned to callers).
  kPending,

  /// Scored in time: `cluster`/`distance` are valid.
  kOk,

  /// Scored, but after the request's deadline — the answer is stale by
  /// SLO and counted as a miss, though cluster/distance are still filled.
  kDeadlineMiss,

  /// Per-document scoring failed after the retry budget (injected or real
  /// fault). Under FaultPolicy::kRetryThenSkip only this request fails;
  /// under kFailFast the rest of the batch aborts too.
  kFailed,

  /// Dropped without scoring, with a bounded error response: either the
  /// circuit breaker was open when the request's batch was cut, or an
  /// interactive arrival preempted this already-queued batch-lane request
  /// under overload. Terminal — a shed request is answered exactly once,
  /// like every other admitted request.
  kShed,
};

/// Stable lowercase name:
/// "pending" | "ok" | "deadline-miss" | "failed" | "shed".
std::string_view RequestOutcomeName(RequestOutcome outcome);

/// Admission class of a request. Interactive is the latency-sensitive
/// foreground lane; batch is backfill that yields under overload.
enum class Lane {
  kInteractive,
  kBatch,
};

/// Stable lowercase name: "interactive" | "batch".
std::string_view LaneName(Lane lane);

/// One admitted classify request, as queued.
struct Request {
  /// Caller-chosen identifier, echoed on the response.
  uint64_t id = 0;

  /// Raw document text (tokenized with the model's frozen config).
  std::string body;

  /// Absolute executor-clock deadline in seconds; <= 0 means none. A
  /// request whose deadline has passed when its batch starts is not
  /// scored at all; one that finishes late is scored but counted missed.
  double deadline_sec = 0.0;

  /// Admission class (only meaningful when the server runs priority
  /// lanes; otherwise recorded but ignored).
  Lane lane = Lane::kInteractive;
};

/// One completed classify request.
struct Response {
  uint64_t id = 0;
  RequestOutcome outcome = RequestOutcome::kPending;

  /// Admission class the request was queued under (echoed).
  Lane lane = Lane::kInteractive;

  /// Version of the model snapshot this request was scored against (0 for
  /// requests that never reached a model: shed, expired, aborted). The
  /// chaos harness audits this against the set of committed registry
  /// versions — the "no torn version ever served" invariant.
  uint64_t model_version = 0;

  /// Nearest centroid index (valid for kOk and kDeadlineMiss-when-scored).
  uint32_t cluster = 0;

  /// Squared L2 distance to that centroid.
  double distance = 0.0;

  /// Executor-clock submit/finish times; latency = finish - submit.
  double submit_time_sec = 0.0;
  double finish_time_sec = 0.0;

  /// Cause for kFailed (and for expired-unscored deadline misses).
  Status status;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_REQUEST_H_
