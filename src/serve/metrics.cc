#include "serve/metrics.h"

#include <algorithm>

#include "common/string_util.h"

namespace hpa::serve {

ServeMetrics::ServeMetrics(int workers) {
  if (workers < 1) workers = 1;
  slots_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
}

void ServeMetrics::OnSubmitted(size_t queue_depth_after, Lane lane) {
  ++submitted_;
  ++lane_submitted_[LaneIndex(lane)];
  max_queue_depth_ = std::max<uint64_t>(max_queue_depth_, queue_depth_after);
}

void ServeMetrics::OnCompleted(double latency_sec, Lane lane) {
  ++completed_;
  ++lane_completed_[LaneIndex(lane)];
  latency_.Add(latency_sec);
}

void ServeMetrics::OnDeadlineMiss(double latency_sec, Lane lane) {
  ++deadline_misses_;
  ++lane_misses_[LaneIndex(lane)];
  latency_.Add(latency_sec);
}

void ServeMetrics::OnFailed(double latency_sec, Lane lane) {
  ++failed_;
  ++lane_failed_[LaneIndex(lane)];
  latency_.Add(latency_sec);
}

void ServeMetrics::OnDocScored(int worker) {
  slots_[static_cast<size_t>(worker)]->docs_scored.fetch_add(
      1, std::memory_order_relaxed);
}

void ServeMetrics::OnRetries(int worker, uint64_t attempts) {
  if (attempts == 0) return;
  slots_[static_cast<size_t>(worker)]->retries.fetch_add(
      attempts, std::memory_order_relaxed);
}

void ServeMetrics::OnFault(int worker) {
  slots_[static_cast<size_t>(worker)]->faults.fetch_add(
      1, std::memory_order_relaxed);
}

ServeMetrics::Snapshot ServeMetrics::Scrape() const {
  Snapshot s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.deadline_misses = deadline_misses_;
  s.failed = failed_;
  s.shed = shed_;
  s.breaker_shed = breaker_shed_;
  s.hot_swaps = hot_swaps_;
  s.swap_rollbacks = swap_rollbacks_;
  for (size_t lane = 0; lane < 2; ++lane) {
    s.lane_submitted[lane] = lane_submitted_[lane];
    s.lane_rejected[lane] = lane_rejected_[lane];
    s.lane_completed[lane] = lane_completed_[lane];
    s.lane_misses[lane] = lane_misses_[lane];
    s.lane_failed[lane] = lane_failed_[lane];
    s.lane_shed[lane] = lane_shed_[lane];
  }
  s.batches = batches_;
  s.batched_requests = batched_requests_;
  s.max_queue_depth = max_queue_depth_;
  for (const auto& slot : slots_) {
    s.docs_scored += slot->docs_scored.load(std::memory_order_relaxed);
    s.retries += slot->retries.load(std::memory_order_relaxed);
    s.faults += slot->faults.load(std::memory_order_relaxed);
  }
  s.mean_batch_occupancy =
      batches_ > 0 ? static_cast<double>(batched_requests_) /
                         static_cast<double>(batches_)
                   : 0.0;
  s.latency_count = latency_.count();
  if (s.latency_count > 0) {
    s.latency_p50_sec = latency_.Quantile(0.50);
    s.latency_p95_sec = latency_.Quantile(0.95);
    s.latency_p99_sec = latency_.Quantile(0.99);
    s.latency_max_sec = latency_.max();
    s.latency_mean_sec = latency_.mean();
  }
  return s;
}

std::string ServeMetrics::Snapshot::Summary() const {
  std::string out = StrFormat(
      "submitted=%llu rejected=%llu completed=%llu misses=%llu failed=%llu "
      "batches=%llu occupancy=%.2f max_queue=%llu docs=%llu retries=%llu "
      "faults=%llu p50=%.6g p95=%.6g p99=%.6g max=%.6g",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(batches), mean_batch_occupancy,
      static_cast<unsigned long long>(max_queue_depth),
      static_cast<unsigned long long>(docs_scored),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(faults), latency_p50_sec,
      latency_p95_sec, latency_p99_sec, latency_max_sec);
  out += StrFormat(
      " shed=%llu breaker_shed=%llu swaps=%llu rollbacks=%llu "
      "lane_int=%llu/%llu/%llu lane_batch=%llu/%llu/%llu",
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(breaker_shed),
      static_cast<unsigned long long>(hot_swaps),
      static_cast<unsigned long long>(swap_rollbacks),
      static_cast<unsigned long long>(lane_submitted[0]),
      static_cast<unsigned long long>(lane_completed[0]),
      static_cast<unsigned long long>(lane_shed[0]),
      static_cast<unsigned long long>(lane_submitted[1]),
      static_cast<unsigned long long>(lane_completed[1]),
      static_cast<unsigned long long>(lane_shed[1]));
  return out;
}

}  // namespace hpa::serve
