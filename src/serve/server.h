#ifndef HPA_SERVE_SERVER_H_
#define HPA_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/retry.h"
#include "common/status.h"
#include "io/fault_injection.h"
#include "ops/exec_context.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/request.h"

/// \file
/// The request-serving engine: raw text in, cluster assignment out,
/// against a frozen ModelHandle. Three mechanisms make it a *server*
/// rather than a loop around Classify():
///
///  * Admission control — a bounded queue with an explicit overload
///    policy. When the queue is full, Submit() rejects immediately
///    (kFailedPrecondition) instead of queueing unboundedly; the caller
///    sees backpressure, not silent latency collapse. With priority
///    lanes enabled the bound is shared between an interactive and a
///    batch class, and an interactive arrival that finds the bound full
///    preempts the newest queued batch request (which is answered with
///    a terminal kShed response) rather than bouncing.
///  * Micro-batching — admitted requests coalesce and execute as ONE
///    ParallelFor region per batch (flush on batch-size ceiling or
///    max-wait, whichever first), amortizing region setup the same way
///    the batch operators amortize spawns. Scoring is pure per document,
///    so batched results are bit-identical to one-at-a-time execution.
///  * Latency SLOs — each request may carry an absolute executor-clock
///    deadline. Requests already expired when their batch starts are not
///    scored (and if the whole batch expired, the region is cancelled via
///    region-scoped RequestStop); requests scored but finishing late are
///    answered yet counted as deadline misses.
///
/// Robustness layer (all off by default, all deterministic on the
/// executor clock):
///
///  * Circuit breaker — when enabled, scoring outcomes feed a
///    CircuitBreaker; while it is open, requests cut into a batch are
///    shed (kShed / kUnavailable) instead of scored, bounding the error
///    responses a fault storm can produce. Allow() decisions are made
///    serially before the parallel region and outcomes are fed serially
///    after it in slot order, so breaker transitions are identical at
///    any worker count's interleaving (virtual times may still differ
///    across worker counts).
///  * Health-gated hot-swap — TryHotSwap() follows the registry's
///    `latest` pointer: the candidate is CRC- and fingerprint-validated
///    by Load, then canary-probed against the live model; on failure the
///    live model keeps serving (rollback). The live handle is refcounted
///    and snapshotted per batch, so in-flight batches finish on the
///    model they started with — zero downtime, no torn reads.
///
/// Per-document scoring faults go through the fault-tolerance layer:
/// RetryPolicy with deterministic backoff (charged to the executor clock),
/// then — under FaultPolicy::kRetryThenSkip — quarantine of that one
/// request while the rest of the batch completes. kFailFast instead
/// cancels the remainder of the batch region, the pre-fault-tolerance
/// behavior.
///
/// Threading contract: Submit/Poll/Drain are driven by one thread (the
/// event loop); parallelism happens *inside* a batch, not across calls.
/// On the simulated executor the whole serving timeline is therefore
/// virtual-time deterministic.
///
/// Lifecycle: a server is kServing from construction until Drain(),
/// which flushes everything and transitions to kStopped — terminally.
/// Submit() on a stopped server is a deterministic kFailedPrecondition;
/// Poll()/Drain() on one return empty. Use FlushAll() for a
/// non-terminal force-flush (the chaos driver's barrier between phases).

namespace hpa::serve {

/// Serving policy knobs.
struct ServerOptions {
  /// Admission queue bound; Submit() rejects when the queue holds this
  /// many pending requests (summed across both lanes when enabled).
  size_t queue_capacity = 64;

  /// Batch ceiling: Poll() flushes as soon as this many are queued.
  size_t max_batch = 8;

  /// Staleness bound: Poll() flushes a sub-ceiling batch once the oldest
  /// queued request has waited this long (executor-clock seconds).
  double max_wait_sec = 0.010;

  /// Retry budget for transient per-document scoring faults.
  RetryPolicy retry = RetryPolicy::NoRetry();

  /// What to do with a request that exhausts the retry budget: fail just
  /// that request (kRetryThenSkip, the serving default — one poisoned
  /// document must not fail its whole batch) or cancel the batch
  /// (kFailFast).
  FaultPolicy fault_policy = FaultPolicy::kRetryThenSkip;

  /// Optional scoring-fault oracle (op "serve-score", key = request id);
  /// not owned. Null = no injected faults.
  io::FaultInjector* injector = nullptr;

  /// When > 0, Executor::set_inline_threshold is set to this at server
  /// construction: batches at or below the threshold run their chunks
  /// inline instead of spawning stealable tasks — the right call when
  /// micro-batches are smaller than the spawn overhead pays for.
  size_t inline_threshold = 0;

  /// Two-class admission: interactive requests preempt the newest queued
  /// batch request when the shared queue bound is full. Off = the
  /// original single FIFO lane (Lane on Submit is recorded but inert).
  bool priority_lanes = false;

  /// Feed scoring outcomes into a circuit breaker and shed batch slots
  /// while it is open.
  bool breaker_enabled = false;

  /// Breaker tuning (used only when breaker_enabled).
  CircuitBreakerOptions breaker;

  /// Hot-swap canary gate: minimum fraction of canary probes on which
  /// the candidate must agree with the live model. 1.0 = bit-for-bit
  /// cluster agreement on every probe (the right bar when the candidate
  /// is a refit of the same corpus/config); lower it when model updates
  /// are expected to move assignments.
  double canary_min_agree = 1.0;
};

/// Single-model serving engine. Borrows the context's executor/disks and
/// the model handle; both must outlive the server (hot-swapped
/// replacement models are owned by the server's refcounted handle).
class AnalyticsServer {
 public:
  enum class State { kServing, kStopped };

  /// `metrics` may be null (no accounting). The context's executor is
  /// required; its quarantine sink, if set, receives scoring quarantines.
  AnalyticsServer(const ops::ExecContext& ctx, const ModelHandle* model,
                  const ServerOptions& options, ServeMetrics* metrics);

  /// Admission: enqueues or rejects. `deadline_sec` is an absolute
  /// executor-clock time (<= 0 = no deadline). Rejection is
  /// kFailedPrecondition with the queue bound in the message; submitting
  /// to a drained server is kFailedPrecondition naming the lifecycle.
  Status Submit(uint64_t id, std::string body, double deadline_sec = 0.0,
                Lane lane = Lane::kInteractive);

  /// Flush-policy tick: cuts and executes at most one batch if the
  /// ceiling or the wait bound says so. Returns that batch's responses
  /// (empty when nothing flushed) plus any preemption sheds that
  /// happened since the last call — every admitted request surfaces in
  /// exactly one Poll/FlushAll/Drain return.
  std::vector<Response> Poll();

  /// Force-flushes everything queued, batch by batch. Non-terminal.
  std::vector<Response> FlushAll();

  /// FlushAll, then transition to kStopped: the terminal flush. Further
  /// Submits are rejected; further Polls/Drains return empty.
  std::vector<Response> Drain();

  /// Health-gated zero-downtime model replacement. Follows `registry`'s
  /// latest pointer; if it names a version newer than the live model,
  /// validates it (manifest + fingerprint + CRCs via Load) and scores
  /// `canary_bodies` against both models. On agreement >=
  /// options.canary_min_agree the candidate atomically becomes the live
  /// model (OnHotSwap); otherwise the live model keeps serving and the
  /// candidate is dropped (OnSwapRollback, kFailedPrecondition). Load
  /// failures (torn/corrupt/drifted candidate) also roll back with their
  /// own status. OK with no metrics change = already current.
  Status TryHotSwap(const ModelRegistry& registry, const ModelConfig& config,
                    const std::vector<std::string>& canary_bodies);

  size_t queue_depth() const { return queue_.size() + batch_queue_.size(); }
  State state() const { return state_; }

  /// Version of the model currently being served.
  uint64_t model_version() const { return model_->version(); }

  /// The scoring-path breaker (state/counter inspection; meaningful only
  /// when options.breaker_enabled).
  const CircuitBreaker& breaker() const { return breaker_; }

  /// Scoring quarantine accumulated under kRetryThenSkip (also merged
  /// into ctx.quarantine when that sink is set).
  const QuarantineList& quarantine() const { return quarantine_; }

 private:
  struct Pending {
    uint64_t id;
    std::string body;
    double deadline_sec;
    double submit_time_sec;
    Lane lane;
  };

  /// Cuts up to max_batch requests (interactive lane first) and runs
  /// them as one parallel region.
  std::vector<Response> FlushBatch();

  /// Moves preemption sheds accumulated since the last delivery into
  /// `out` (front), stamping finish times.
  void TakePendingSheds(std::vector<Response>* out);

  ops::ExecContext ctx_;
  std::shared_ptr<const ModelHandle> model_;
  ServerOptions options_;
  ServeMetrics* metrics_;
  State state_ = State::kServing;
  std::deque<Pending> queue_;        ///< interactive (or the only) lane
  std::deque<Pending> batch_queue_;  ///< batch lane (priority_lanes only)
  std::vector<Response> pending_sheds_;
  CircuitBreaker breaker_;
  QuarantineList quarantine_;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_SERVER_H_
