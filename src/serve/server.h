#ifndef HPA_SERVE_SERVER_H_
#define HPA_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "io/fault_injection.h"
#include "ops/exec_context.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/request.h"

/// \file
/// The request-serving engine: raw text in, cluster assignment out,
/// against a frozen ModelHandle. Three mechanisms make it a *server*
/// rather than a loop around Classify():
///
///  * Admission control — a bounded queue with an explicit overload
///    policy. When the queue is full, Submit() rejects immediately
///    (kFailedPrecondition) instead of queueing unboundedly; the caller
///    sees backpressure, not silent latency collapse.
///  * Micro-batching — admitted requests coalesce and execute as ONE
///    ParallelFor region per batch (flush on batch-size ceiling or
///    max-wait, whichever first), amortizing region setup the same way
///    the batch operators amortize spawns. Scoring is pure per document,
///    so batched results are bit-identical to one-at-a-time execution.
///  * Latency SLOs — each request may carry an absolute executor-clock
///    deadline. Requests already expired when their batch starts are not
///    scored (and if the whole batch expired, the region is cancelled via
///    region-scoped RequestStop); requests scored but finishing late are
///    answered yet counted as deadline misses.
///
/// Per-document scoring faults go through the fault-tolerance layer:
/// RetryPolicy with deterministic backoff (charged to the executor clock),
/// then — under FaultPolicy::kRetryThenSkip — quarantine of that one
/// request while the rest of the batch completes. kFailFast instead
/// cancels the remainder of the batch region, the pre-fault-tolerance
/// behavior.
///
/// Threading contract: Submit/Poll/Drain are driven by one thread (the
/// event loop); parallelism happens *inside* a batch, not across calls.
/// On the simulated executor the whole serving timeline is therefore
/// virtual-time deterministic.

namespace hpa::serve {

/// Serving policy knobs.
struct ServerOptions {
  /// Admission queue bound; Submit() rejects when the queue holds this
  /// many pending requests.
  size_t queue_capacity = 64;

  /// Batch ceiling: Poll() flushes as soon as this many are queued.
  size_t max_batch = 8;

  /// Staleness bound: Poll() flushes a sub-ceiling batch once the oldest
  /// queued request has waited this long (executor-clock seconds).
  double max_wait_sec = 0.010;

  /// Retry budget for transient per-document scoring faults.
  RetryPolicy retry = RetryPolicy::NoRetry();

  /// What to do with a request that exhausts the retry budget: fail just
  /// that request (kRetryThenSkip, the serving default — one poisoned
  /// document must not fail its whole batch) or cancel the batch
  /// (kFailFast).
  FaultPolicy fault_policy = FaultPolicy::kRetryThenSkip;

  /// Optional scoring-fault oracle (op "serve-score", key = request id);
  /// not owned. Null = no injected faults.
  io::FaultInjector* injector = nullptr;

  /// When > 0, Executor::set_inline_threshold is set to this at server
  /// construction: batches at or below the threshold run their chunks
  /// inline instead of spawning stealable tasks — the right call when
  /// micro-batches are smaller than the spawn overhead pays for.
  size_t inline_threshold = 0;
};

/// Single-model serving engine. Borrows the context's executor/disks and
/// the model handle; both must outlive the server.
class AnalyticsServer {
 public:
  /// `metrics` may be null (no accounting). The context's executor is
  /// required; its quarantine sink, if set, receives scoring quarantines.
  AnalyticsServer(const ops::ExecContext& ctx, const ModelHandle* model,
                  const ServerOptions& options, ServeMetrics* metrics);

  /// Admission: enqueues or rejects. `deadline_sec` is an absolute
  /// executor-clock time (<= 0 = no deadline). Rejection is
  /// kFailedPrecondition with the queue bound in the message.
  Status Submit(uint64_t id, std::string body, double deadline_sec = 0.0);

  /// Flush-policy tick: cuts and executes at most one batch if the
  /// ceiling or the wait bound says so. Returns that batch's responses
  /// (empty when nothing flushed).
  std::vector<Response> Poll();

  /// Force-flushes everything queued, batch by batch.
  std::vector<Response> Drain();

  size_t queue_depth() const { return queue_.size(); }

  /// Scoring quarantine accumulated under kRetryThenSkip (also merged
  /// into ctx.quarantine when that sink is set).
  const QuarantineList& quarantine() const { return quarantine_; }

 private:
  struct Pending {
    uint64_t id;
    std::string body;
    double deadline_sec;
    double submit_time_sec;
  };

  /// Cuts up to max_batch requests and runs them as one parallel region.
  std::vector<Response> FlushBatch();

  ops::ExecContext ctx_;
  const ModelHandle* model_;
  ServerOptions options_;
  ServeMetrics* metrics_;
  std::deque<Pending> queue_;
  QuarantineList quarantine_;
};

}  // namespace hpa::serve

#endif  // HPA_SERVE_SERVER_H_
