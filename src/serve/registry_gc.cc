#include "serve/registry_gc.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "common/checksum.h"
#include "common/string_util.h"

namespace hpa::serve {

namespace {

bool ParseHex32Local(std::string_view s, uint32_t* out) {
  uint64_t v = 0;
  if (s.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, /*base=*/16);
  if (ec != std::errc() || ptr != s.data() + s.size() || v > 0xFFFFFFFFull) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

/// One artifact entry from a manifest: path + expected size + CRC.
struct ArtifactRef {
  std::string path;
  uint64_t bytes = 0;
  uint32_t crc = 0;
};

}  // namespace

std::string GcReport::Summary() const {
  std::string out = StrFormat(
      "scanned=%llu intact=%llu torn=%zu quarantined=%zu removed=%zu "
      "pinned=%zu latest=%llu->%llu repaired=%d",
      static_cast<unsigned long long>(scanned_versions),
      static_cast<unsigned long long>(intact_versions), torn_versions.size(),
      quarantined.size(), removed_versions.size(), pinned_kept.size(),
      static_cast<unsigned long long>(latest_before),
      static_cast<unsigned long long>(latest_after),
      latest_repaired ? 1 : 0);
  return out;
}

RegistryGc::RegistryGc(io::SimDisk* disk, std::string dir, GcOptions options)
    : disk_(disk), options_(options), paths_(disk, std::move(dir)) {
  if (options_.retain < 1) options_.retain = 1;
}

Status RegistryGc::ValidateVersion(uint64_t version) {
  std::string manifest_path = paths_.ManifestPath(version);
  StatusOr<std::string> text = disk_->ReadFile(manifest_path);
  if (!text.ok()) return text.status();

  // Minimal manifest parse: artifact lines + the `end` commit marker.
  // Fingerprint/terms/documents are serving-time concerns; GC only asks
  // "are the bytes this manifest committed actually here and whole?".
  std::vector<ArtifactRef> artifacts;
  bool saw_end = false;
  std::vector<std::string_view> lines = Split(*text, '\n');
  if (lines.empty() || Trim(lines[0]) != "hpa-model-registry v1") {
    return Status::Corruption("bad manifest header");
  }
  for (size_t i = 1; i < lines.size() && !saw_end; ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
    } else if (StartsWith(line, "tfidf ") || StartsWith(line, "centroids ")) {
      std::vector<std::string_view> parts = Split(line, ' ');
      int64_t bytes = 0;
      uint32_t crc = 0;
      if (parts.size() != 4 || !ParseInt64(parts[2], &bytes) || bytes < 0 ||
          !ParseHex32Local(parts[3], &crc)) {
        return Status::Corruption("bad artifact line in manifest");
      }
      artifacts.push_back(ArtifactRef{std::string(parts[1]),
                                      static_cast<uint64_t>(bytes), crc});
    }
  }
  if (!saw_end || artifacts.size() != 2) {
    return Status::Corruption("manifest truncated (no end marker)");
  }
  for (const ArtifactRef& a : artifacts) {
    if (!disk_->Exists(a.path)) {
      return Status::Corruption("missing artifact " + a.path);
    }
    StatusOr<std::string> bytes = disk_->ReadFile(a.path);
    if (!bytes.ok()) return bytes.status();
    if (bytes->size() != a.bytes || Crc32(*bytes) != a.crc) {
      return Status::Corruption("artifact failed checksum: " + a.path);
    }
  }
  return Status::OK();
}

StatusOr<GcReport> RegistryGc::Run() {
  GcReport report;

  // Record the incoming latest pointer (tolerating absence/garbage —
  // that is precisely the damage this pass repairs).
  if (disk_->Exists(paths_.LatestPath())) {
    StatusOr<std::string> text = disk_->ReadFile(paths_.LatestPath());
    if (text.ok()) {
      int64_t v = 0;
      if (ParseInt64(Trim(*text), &v) && v >= 1) {
        report.latest_before = static_cast<uint64_t>(v);
      }
    }
  }

  // Upward scan over the dense version space. A version leaves a trace
  // if any of its four files exists. The horizon starts past the latest
  // pointer (so a prefix removed by earlier retain-N passes cannot end
  // the scan early) and extends kScanGapLimit beyond every trace found;
  // the scan ends when the horizon is exhausted.
  std::vector<uint64_t> intact;
  uint64_t horizon = report.latest_before + kScanGapLimit;
  for (uint64_t v = 1; v <= horizon; ++v) {
    bool has_manifest = disk_->Exists(paths_.ManifestPath(v));
    bool has_tfidf = disk_->Exists(paths_.TfidfPath(v));
    bool has_cent = disk_->Exists(paths_.CentroidsPath(v));
    bool has_marker = disk_->Exists(paths_.QuarantinePath(v));
    if (!has_manifest && !has_tfidf && !has_cent && !has_marker) {
      continue;
    }
    if (v + kScanGapLimit > horizon) horizon = v + kScanGapLimit;
    ++report.scanned_versions;

    if (has_marker) {
      // Already quarantined by a previous pass: evidence is preserved,
      // Load refuses it, nothing further to do.
      continue;
    }
    if (!has_manifest) {
      // Torn publish: the commit record never landed, so by discipline
      // this version never existed. Delete the orphan artifacts.
      report.torn_versions.push_back(v);
      if (has_tfidf) {
        HPA_RETURN_IF_ERROR(disk_->Remove(paths_.TfidfPath(v)));
      }
      if (has_cent) {
        HPA_RETURN_IF_ERROR(disk_->Remove(paths_.CentroidsPath(v)));
      }
      continue;
    }
    Status valid = ValidateVersion(v);
    if (valid.ok()) {
      intact.push_back(v);
      continue;
    }
    if (valid.code() != StatusCode::kCorruption) return valid;
    // Corrupt committed version: quarantine with the logged reason. The
    // marker write is atomic, so a crash here either leaves the marker
    // (done) or not (next pass re-detects the same corruption).
    report.quarantined.push_back(v);
    report.quarantine_reasons.push_back(valid.message());
    HPA_RETURN_IF_ERROR(disk_->WriteFile(
        paths_.QuarantinePath(v),
        StrFormat("hpa-quarantine v1\nversion %llu\nreason %s\n",
                  static_cast<unsigned long long>(v),
                  valid.message().c_str())));
  }

  // Repair the latest pointer BEFORE any retain-N removal: a reader that
  // races a crash between repair and removal must still find a committed
  // version at the pointer. The manifest is the commit record, so repair
  // also rolls *forward*: a crash between manifest commit and pointer
  // move left a committed version the pointer must catch up to.
  uint64_t newest_intact = intact.empty() ? 0 : intact.back();
  bool latest_ok = newest_intact != 0 && report.latest_before == newest_intact;
  if (!latest_ok) {
    report.latest_repaired = true;
    if (newest_intact != 0) {
      std::string text;
      AppendUint(text, newest_intact);
      text += '\n';
      HPA_RETURN_IF_ERROR(disk_->WriteFile(paths_.LatestPath(), text));
      report.latest_after = newest_intact;
    } else if (disk_->Exists(paths_.LatestPath())) {
      // Nothing intact to point at: remove the dangling pointer so
      // LatestVersion() reports an honestly empty registry.
      HPA_RETURN_IF_ERROR(disk_->Remove(paths_.LatestPath()));
      report.latest_after = 0;
    }
  } else {
    report.latest_after = report.latest_before;
  }

  // Retain-N compaction over intact versions only (quarantined versions
  // are evidence and stay). Live-routed pins exempt a version from
  // removal no matter how old: a router serving a weighted split holds
  // versions retain-N considers expendable. Removal order is manifest
  // first: a crash mid-removal leaves a torn version, which the next
  // pass deletes.
  size_t keep = static_cast<size_t>(options_.retain);
  size_t candidate_count = intact.size() > keep ? intact.size() - keep : 0;
  for (size_t i = 0; i < candidate_count; ++i) {
    uint64_t v = intact[i];
    if (options_.pins != nullptr && options_.pins->IsPinned(v)) {
      report.pinned_kept.push_back(v);
      continue;
    }
    HPA_RETURN_IF_ERROR(disk_->Remove(paths_.ManifestPath(v)));
    if (disk_->Exists(paths_.TfidfPath(v))) {
      HPA_RETURN_IF_ERROR(disk_->Remove(paths_.TfidfPath(v)));
    }
    if (disk_->Exists(paths_.CentroidsPath(v))) {
      HPA_RETURN_IF_ERROR(disk_->Remove(paths_.CentroidsPath(v)));
    }
    report.removed_versions.push_back(v);
  }
  report.intact_versions = intact.size() - report.removed_versions.size();
  return report;
}

}  // namespace hpa::serve
