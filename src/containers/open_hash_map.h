#ifndef HPA_CONTAINERS_OPEN_HASH_MAP_H_
#define HPA_CONTAINERS_OPEN_HASH_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "containers/hash.h"

/// \file
/// An open-addressing (linear-probing) hash map: flat slot array, no
/// per-element allocation. This is the "what a modern engine would use"
/// extension point beyond the paper's std::map / std::unordered_map pair —
/// the dictionary benchmarks show where it lands between the two.

namespace hpa::containers {

/// Flat hash map with linear probing and tombstone-free deletion
/// (backward-shift), max load factor 7/8.
///
/// Keys and values are stored inline in one contiguous slot array, so
/// iteration and probing are cache-friendly; the trade-off is key/value
/// moves during rehash and deletion shifts.
template <typename Key, typename Value, typename Hash = DefaultHash<Key>>
class OpenHashMap {
 public:
  explicit OpenHashMap(size_t capacity_hint = 16) {
    size_t cap = 16;
    while (cap * 7 / 8 < capacity_hint) cap <<= 1;
    slots_.resize(cap);
  }

  OpenHashMap(const OpenHashMap&) = delete;
  OpenHashMap& operator=(const OpenHashMap&) = delete;
  OpenHashMap(OpenHashMap&&) noexcept = default;
  OpenHashMap& operator=(OpenHashMap&&) noexcept = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }
  uint64_t rehash_count() const { return rehash_count_; }

  /// Returns the value for `key`, inserting a default if absent. Probes
  /// before any rehash so a lookup hit never resizes — callers may update
  /// values of existing keys mid-ForEach (the operators' id/df fix-up
  /// pattern) without invalidating the iteration.
  template <typename K>
  Value& FindOrInsert(const K& key) {
    size_t mask = slots_.size() - 1;
    size_t i = hash_(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (!s.occupied) break;
      if (s.key == key) return s.value;
      i = (i + 1) & mask;
    }
    if ((size_ + 1) * 8 > slots_.size() * 7) {
      Rehash(slots_.size() * 2);
      mask = slots_.size() - 1;
      i = hash_(key) & mask;
      while (slots_[i].occupied) i = (i + 1) & mask;
    }
    Slot& s = slots_[i];
    s.occupied = true;
    s.key = Key(key);
    s.value = Value{};
    ++size_;
    return s.value;
  }

  template <typename K>
  const Value* Find(const K& key) const {
    size_t mask = slots_.size() - 1;
    size_t i = hash_(key) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (!s.occupied) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & mask;
    }
  }

  template <typename K>
  Value* Find(const K& key) {
    return const_cast<Value*>(
        static_cast<const OpenHashMap*>(this)->Find(key));
  }

  template <typename K>
  bool Contains(const K& key) const {
    return Find(key) != nullptr;
  }

  /// Removes `key` with backward-shift deletion (keeps probe chains intact
  /// without tombstones). Returns false if absent.
  template <typename K>
  bool Erase(const K& key) {
    size_t mask = slots_.size() - 1;
    size_t i = hash_(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (!s.occupied) return false;
      if (s.key == key) break;
      i = (i + 1) & mask;
    }
    // Backward shift: move subsequent chain members up while they are not
    // at their home slot.
    size_t hole = i;
    size_t j = (i + 1) & mask;
    while (slots_[j].occupied) {
      size_t home = hash_(slots_[j].key) & mask;
      // Can slots_[j] legally move into `hole`? Only if the hole lies
      // cyclically between its home and its current position.
      bool movable = ((j - home) & mask) >= ((j - hole) & mask);
      if (movable) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = (j + 1) & mask;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Removes all entries, keeping the slot array allocated (recycling).
  void Clear() {
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  /// Ensures capacity for `n` entries without rehashing during inserts.
  void Reserve(size_t n) {
    size_t cap = slots_.size();
    while (cap * 7 / 8 < n) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Unordered traversal: fn(key, value).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Slot& s : slots_) {
      if (s.occupied) fn(s.key, s.value);
    }
  }

  /// False: slot order, not key order.
  static constexpr bool kSortedIteration = false;

  /// Slot array + owned key/value heap.
  uint64_t ApproxMemoryBytes() const {
    uint64_t bytes = slots_.capacity() * sizeof(Slot);
    for (const Slot& s : slots_) {
      if (s.occupied) {
        bytes += internal_hash::OwnedHeapBytes(s.key) +
                 internal_hash::OwnedHeapBytes(s.value);
      }
    }
    return bytes;
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool occupied = false;
  };

  void Rehash(size_t new_cap) {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(new_cap);
    size_ = 0;
    ++rehash_count_;
    for (Slot& s : old) {
      if (s.occupied) FindOrInsert(std::move(s.key)) = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  uint64_t rehash_count_ = 0;
  Hash hash_{};
};

}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_OPEN_HASH_MAP_H_
