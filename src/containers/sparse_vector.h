#ifndef HPA_CONTAINERS_SPARSE_VECTOR_H_
#define HPA_CONTAINERS_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// \file
/// Sparse numeric vectors — the representation whose adoption the paper
/// credits for most of the gap to WEKA ("using sparse vectors to represent
/// inherently sparse data"). A document's TF/IDF scores over a vocabulary
/// of hundreds of thousands of terms typically has a few hundred non-zeros.

namespace hpa::containers {

/// Immutable-ish sparse vector: parallel (term id, value) arrays sorted by
/// ascending id. Structure-of-arrays layout keeps dot products streaming.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from unsorted (id, value) pairs; ids must be unique.
  static SparseVector FromPairs(std::vector<std::pair<uint32_t, float>> pairs);

  /// Appends an entry; `id` must be greater than the last appended id.
  /// (Used by builders that already iterate terms in sorted order.)
  void PushBack(uint32_t id, float value);

  /// Number of stored non-zeros.
  size_t nnz() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  const std::vector<uint32_t>& ids() const { return ids_; }
  const std::vector<float>& values() const { return values_; }

  uint32_t id_at(size_t i) const { return ids_[i]; }
  float value_at(size_t i) const { return values_[i]; }

  /// Value at term `id`, or 0 if absent. O(log nnz).
  float ValueOf(uint32_t id) const;

  /// Sum of squared values.
  double SquaredL2Norm() const;

  /// Scales all values so the L2 norm is 1. No-op for the zero vector.
  void NormalizeL2();

  /// Removes all entries but keeps capacity (buffer recycling).
  void Clear() {
    ids_.clear();
    values_.clear();
  }

  /// Reserves storage for `n` entries.
  void Reserve(size_t n) {
    ids_.reserve(n);
    values_.reserve(n);
  }

  /// Heap bytes held by this vector (capacity, not size).
  uint64_t ApproxMemoryBytes() const {
    return ids_.capacity() * sizeof(uint32_t) +
           values_.capacity() * sizeof(float);
  }

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.ids_ == b.ids_ && a.values_ == b.values_;
  }

 private:
  std::vector<uint32_t> ids_;
  std::vector<float> values_;
};

/// Dot product of two sparse vectors (merge join over sorted ids).
double Dot(const SparseVector& a, const SparseVector& b);

/// Dot product of a sparse vector with a dense vector. Ids beyond
/// `dense.size()` are ignored (treated as zero).
double Dot(const SparseVector& a, const std::vector<float>& dense);

/// dense[id] += scale * value for each entry of `a`. `dense` must be large
/// enough for every id in `a`.
void AddScaled(const SparseVector& a, float scale, std::vector<float>& dense);

/// Squared Euclidean distance between a sparse point and a dense centroid
/// with precomputed squared norm: ||x||^2 - 2 x.c + ||c||^2. This is the
/// kernel of sparse K-means — O(nnz) instead of O(dim).
double SquaredDistance(const SparseVector& x, double x_sq_norm,
                       const std::vector<float>& centroid,
                       double centroid_sq_norm);

}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_SPARSE_VECTOR_H_
