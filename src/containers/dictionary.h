#ifndef HPA_CONTAINERS_DICTIONARY_H_
#define HPA_CONTAINERS_DICTIONARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>

#include "common/status.h"
#include "containers/chained_hash_map.h"
#include "containers/hash.h"
#include "containers/open_hash_map.h"
#include "containers/rb_tree_map.h"
#include "containers/sharded_dict.h"

/// \file
/// The dictionary abstraction at the heart of the paper's §3.4: word-count
/// and TF/IDF keep their term tables behind one uniform API so the backend
/// can be swapped per workflow phase. Five backends are provided:
///
///   * kStdMap          — `std::map` (the paper's "map")
///   * kStdUnorderedMap — `std::unordered_map` (the paper's "u-map")
///   * kRbTree          — our instrumented red-black tree (≈ std::map)
///   * kChainedHash     — our instrumented chained table (≈ unordered_map)
///   * kOpenHash        — flat open addressing (the modern-engine choice)
///
/// All expose: FindOrInsert / Find / size / Clear / Reserve / ForEach /
/// ApproxMemoryBytes / kSortedIteration, keyed by std::string with
/// heterogeneous std::string_view lookup.

namespace hpa::containers {

/// Selectable dictionary implementation.
enum class DictBackend {
  kStdMap,
  kStdUnorderedMap,
  kRbTree,
  kChainedHash,
  kOpenHash,
};

/// Stable name ("map", "u-map", "rb-tree", "chained-hash", "open-hash").
std::string_view DictBackendName(DictBackend backend);

/// Inverse of DictBackendName. Also accepts "unordered_map" and "std_map".
StatusOr<DictBackend> ParseDictBackend(std::string_view name);

/// All backends, for parameterized tests and sweeps.
inline constexpr DictBackend kAllDictBackends[] = {
    DictBackend::kStdMap, DictBackend::kStdUnorderedMap, DictBackend::kRbTree,
    DictBackend::kChainedHash, DictBackend::kOpenHash,
};

/// Uniform wrapper over std::map<std::string, V>.
template <typename V>
class StdMapDict {
 public:
  explicit StdMapDict(size_t /*capacity_hint*/ = 0) {}

  V& FindOrInsert(std::string_view key) {
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    return map_.emplace(std::string(key), V{}).first->second;
  }
  const V* Find(std::string_view key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  bool Contains(std::string_view key) const { return Find(key) != nullptr; }
  bool Erase(std::string_view key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    map_.erase(it);
    return true;
  }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.clear(); }
  void Reserve(size_t) {}

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& [k, v] : map_) fn(k, v);
  }

  static constexpr bool kSortedIteration = true;

  uint64_t ApproxMemoryBytes() const {
    // libstdc++ _Rb_tree_node: 3 pointers + color + payload, rounded.
    uint64_t per_node = 40 + sizeof(std::pair<std::string, V>);
    uint64_t bytes = 0;
    for (const auto& [k, v] : map_) {
      bytes += per_node + internal_hash::OwnedHeapBytes(k) +
               internal_hash::OwnedHeapBytes(v);
    }
    return bytes;
  }

 private:
  std::map<std::string, V, std::less<>> map_;
};

/// Uniform wrapper over std::unordered_map<std::string, V>.
///
/// `capacity_hint` pre-sizes the bucket array — the paper pre-sizes its
/// per-document u-map tables "to hold 4K items to minimize resizing
/// overhead", which is also what blows up its memory footprint.
template <typename V>
class StdUnorderedDict {
 public:
  explicit StdUnorderedDict(size_t capacity_hint = 0) {
    // reserve() sizes for `capacity_hint` *elements* (accounting for
    // max_load_factor); rehash() would interpret it as a bucket count.
    if (capacity_hint > 0) map_.reserve(capacity_hint);
  }

  V& FindOrInsert(std::string_view key) {
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    return map_.emplace(std::string(key), V{}).first->second;
  }
  const V* Find(std::string_view key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  bool Contains(std::string_view key) const { return Find(key) != nullptr; }
  bool Erase(std::string_view key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    map_.erase(it);
    return true;
  }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.clear(); }
  void Reserve(size_t n) { map_.reserve(n); }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& [k, v] : map_) fn(k, v);
  }

  static constexpr bool kSortedIteration = false;

  uint64_t ApproxMemoryBytes() const {
    // Bucket array plus one _Hash_node (next ptr + hash cache + payload).
    uint64_t bytes = map_.bucket_count() * sizeof(void*);
    uint64_t per_node = 16 + sizeof(std::pair<std::string, V>);
    for (const auto& [k, v] : map_) {
      bytes += per_node + internal_hash::OwnedHeapBytes(k) +
               internal_hash::OwnedHeapBytes(v);
    }
    return bytes;
  }

 private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(HashBytes(s.data(), s.size()));
    }
  };
  std::unordered_map<std::string, V, TransparentHash, std::equal_to<>> map_;
};

/// Maps a DictBackend tag to the wrapper type for value type `V`.
template <DictBackend B, typename V>
struct DictFor;

template <typename V>
struct DictFor<DictBackend::kStdMap, V> {
  using type = StdMapDict<V>;
};
template <typename V>
struct DictFor<DictBackend::kStdUnorderedMap, V> {
  using type = StdUnorderedDict<V>;
};
template <typename V>
struct DictFor<DictBackend::kRbTree, V> {
  using type = RbTreeMap<std::string, V>;
};
template <typename V>
struct DictFor<DictBackend::kChainedHash, V> {
  using type = ChainedHashMap<std::string, V>;
};
template <typename V>
struct DictFor<DictBackend::kOpenHash, V> {
  using type = OpenHashMap<std::string, V>;
};

/// Hash-partitioned composite of backend `B`: the output type of the
/// parallel sharded reductions (parallel/parallel_ops.h). Same uniform
/// surface as the plain backends, so it drops into the same pipelines.
template <DictBackend B, typename V>
using ShardedDictFor = ShardedDict<typename DictFor<B, V>::type>;

/// Invokes `fn` with a `std::integral_constant<DictBackend, B>` matching the
/// runtime `backend` — the bridge from runtime plan choices to the
/// statically-typed operator pipelines:
///
/// \code
///   DispatchDictBackend(plan.wc_backend, [&](auto tag) {
///     RunWordCount<tag()>(ctx, corpus);
///   });
/// \endcode
template <typename Fn>
decltype(auto) DispatchDictBackend(DictBackend backend, Fn&& fn) {
  switch (backend) {
    case DictBackend::kStdMap:
      return fn(std::integral_constant<DictBackend, DictBackend::kStdMap>{});
    case DictBackend::kStdUnorderedMap:
      return fn(std::integral_constant<DictBackend,
                                       DictBackend::kStdUnorderedMap>{});
    case DictBackend::kRbTree:
      return fn(std::integral_constant<DictBackend, DictBackend::kRbTree>{});
    case DictBackend::kChainedHash:
      return fn(
          std::integral_constant<DictBackend, DictBackend::kChainedHash>{});
    case DictBackend::kOpenHash:
      return fn(std::integral_constant<DictBackend, DictBackend::kOpenHash>{});
  }
  // Unreachable for valid enum values.
  return fn(std::integral_constant<DictBackend, DictBackend::kStdMap>{});
}

}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_DICTIONARY_H_
