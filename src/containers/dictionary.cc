#include "containers/dictionary.h"

namespace hpa::containers {

std::string_view DictBackendName(DictBackend backend) {
  switch (backend) {
    case DictBackend::kStdMap:
      return "map";
    case DictBackend::kStdUnorderedMap:
      return "u-map";
    case DictBackend::kRbTree:
      return "rb-tree";
    case DictBackend::kChainedHash:
      return "chained-hash";
    case DictBackend::kOpenHash:
      return "open-hash";
  }
  return "unknown";
}

StatusOr<DictBackend> ParseDictBackend(std::string_view name) {
  if (name == "map" || name == "std_map" || name == "std::map") {
    return DictBackend::kStdMap;
  }
  if (name == "u-map" || name == "umap" || name == "unordered_map" ||
      name == "std::unordered_map") {
    return DictBackend::kStdUnorderedMap;
  }
  if (name == "rb-tree" || name == "rbtree") return DictBackend::kRbTree;
  if (name == "chained-hash" || name == "chained") {
    return DictBackend::kChainedHash;
  }
  if (name == "open-hash" || name == "open") return DictBackend::kOpenHash;
  return Status::InvalidArgument("unknown dictionary backend '" +
                                 std::string(name) +
                                 "' (expected map, u-map, rb-tree, "
                                 "chained-hash, or open-hash)");
}

}  // namespace hpa::containers
