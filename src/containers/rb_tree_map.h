#ifndef HPA_CONTAINERS_RB_TREE_MAP_H_
#define HPA_CONTAINERS_RB_TREE_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "containers/hash.h"

/// \file
/// A from-scratch red-black tree map — the `std::map` of the paper's
/// Figure 4, reimplemented so the library can instrument it (node counts,
/// memory accounting) and so its behaviour is identical across standard
/// libraries. Insert and erase follow CLRS with a per-tree nil sentinel.

namespace hpa::containers {

/// Ordered map with O(log n) insert / lookup / erase.
///
/// `Compare` must be transparent-capable (default `std::less<>`), so lookups
/// accept any type comparable with `Key` (e.g. `std::string_view` keys
/// against `std::string` storage) without constructing a `Key`.
template <typename Key, typename Value, typename Compare = std::less<>>
class RbTreeMap {
 public:
  /// `capacity_hint` is accepted for interface parity with the hash-based
  /// dictionaries; a tree has nothing useful to pre-size.
  explicit RbTreeMap(size_t capacity_hint = 0) {
    (void)capacity_hint;
    nil_ = new Node();
    nil_->red = false;
    nil_->left = nil_->right = nil_->parent = nil_;
    root_ = nil_;
  }

  RbTreeMap(const RbTreeMap&) = delete;
  RbTreeMap& operator=(const RbTreeMap&) = delete;

  RbTreeMap(RbTreeMap&& other) noexcept { MoveFrom(std::move(other)); }
  RbTreeMap& operator=(RbTreeMap&& other) noexcept {
    if (this != &other) {
      DeleteAll();
      delete nil_;
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~RbTreeMap() {
    DeleteAll();
    delete nil_;
  }

  /// Number of stored keys.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns the value for `key`, default-constructing and inserting it if
  /// absent. `key` may be any type comparable with `Key` and convertible to
  /// it (conversion happens only on insert).
  template <typename K>
  Value& FindOrInsert(const K& key) {
    Node* parent = nil_;
    Node* cur = root_;
    while (cur != nil_) {
      parent = cur;
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return cur->value;
      }
    }
    Node* node = new Node();
    node->key = Key(key);
    node->left = node->right = nil_;
    node->parent = parent;
    node->red = true;
    if (parent == nil_) {
      root_ = node;
    } else if (cmp_(node->key, parent->key)) {
      parent->left = node;
    } else {
      parent->right = node;
    }
    ++size_;
    InsertFixup(node);
    return node->value;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  template <typename K>
  const Value* Find(const K& key) const {
    const Node* cur = root_;
    while (cur != nil_) {
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return &cur->value;
      }
    }
    return nullptr;
  }

  template <typename K>
  Value* Find(const K& key) {
    return const_cast<Value*>(
        static_cast<const RbTreeMap*>(this)->Find(key));
  }

  template <typename K>
  bool Contains(const K& key) const {
    return Find(key) != nullptr;
  }

  /// Removes `key`. Returns false if it was absent.
  template <typename K>
  bool Erase(const K& key) {
    Node* z = root_;
    while (z != nil_) {
      if (cmp_(key, z->key)) {
        z = z->left;
      } else if (cmp_(z->key, key)) {
        z = z->right;
      } else {
        EraseNode(z);
        return true;
      }
    }
    return false;
  }

  /// Removes all entries.
  void Clear() {
    DeleteAll();
    root_ = nil_;
    size_ = 0;
  }

  /// Capacity hint; a tree has nothing useful to pre-size (kept for
  /// interface parity with the hash maps).
  void Reserve(size_t) {}

  /// In-order (ascending key) traversal: fn(key, value).
  template <typename Fn>
  void ForEach(Fn fn) const {
    // Iterative in-order traversal, O(1) extra space via parent pointers.
    const Node* cur = Minimum(root_);
    while (cur != nil_) {
      fn(cur->key, cur->value);
      cur = Successor(cur);
    }
  }

  /// True: ForEach visits keys in ascending order. Used by callers that can
  /// skip a sort when the structure is already ordered (paper §3.4).
  static constexpr bool kSortedIteration = true;

  /// Approximate heap footprint: nodes plus key/value owned heap.
  uint64_t ApproxMemoryBytes() const {
    uint64_t bytes = sizeof(Node);  // nil sentinel
    const Node* cur = Minimum(root_);
    while (cur != nil_) {
      bytes += sizeof(Node) + internal_hash::OwnedHeapBytes(cur->key) +
               internal_hash::OwnedHeapBytes(cur->value);
      cur = Successor(cur);
    }
    return bytes;
  }

  /// Validates the red-black invariants; aborts via assert on violation and
  /// returns the tree's black-height. Test-only (O(n)).
  int CheckInvariants() const {
    assert(!root_->red && "root must be black");
    return CheckSubtree(root_);
  }

 private:
  struct Node {
    Key key{};
    Value value{};
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
    bool red = false;
  };

  void MoveFrom(RbTreeMap&& other) {
    root_ = other.root_;
    nil_ = other.nil_;
    size_ = other.size_;
    cmp_ = other.cmp_;
    other.nil_ = new Node();
    other.nil_->red = false;
    other.nil_->left = other.nil_->right = other.nil_->parent = other.nil_;
    other.root_ = other.nil_;
    other.size_ = 0;
  }

  void RotateLeft(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nil_) y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void RotateRight(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nil_) y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void InsertFixup(Node* z) {
    while (z->parent->red) {
      if (z->parent == z->parent->parent->left) {
        Node* uncle = z->parent->parent->right;
        if (uncle->red) {
          z->parent->red = false;
          uncle->red = false;
          z->parent->parent->red = true;
          z = z->parent->parent;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            RotateLeft(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          RotateRight(z->parent->parent);
        }
      } else {
        Node* uncle = z->parent->parent->left;
        if (uncle->red) {
          z->parent->red = false;
          uncle->red = false;
          z->parent->parent->red = true;
          z = z->parent->parent;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            RotateRight(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          RotateLeft(z->parent->parent);
        }
      }
    }
    root_->red = false;
  }

  void Transplant(Node* u, Node* v) {
    if (u->parent == nil_) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    v->parent = u->parent;
  }

  void EraseNode(Node* z) {
    Node* y = z;
    Node* x = nil_;
    bool y_was_red = y->red;
    if (z->left == nil_) {
      x = z->right;
      Transplant(z, z->right);
    } else if (z->right == nil_) {
      x = z->left;
      Transplant(z, z->left);
    } else {
      y = Minimum(z->right);
      y_was_red = y->red;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // x may be nil_; fixup needs its parent set
      } else {
        Transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      Transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->red = z->red;
    }
    delete z;
    --size_;
    if (!y_was_red) EraseFixup(x);
  }

  void EraseFixup(Node* x) {
    while (x != root_ && !x->red) {
      if (x == x->parent->left) {
        Node* w = x->parent->right;
        if (w->red) {
          w->red = false;
          x->parent->red = true;
          RotateLeft(x->parent);
          w = x->parent->right;
        }
        if (!w->left->red && !w->right->red) {
          w->red = true;
          x = x->parent;
        } else {
          if (!w->right->red) {
            w->left->red = false;
            w->red = true;
            RotateRight(w);
            w = x->parent->right;
          }
          w->red = x->parent->red;
          x->parent->red = false;
          w->right->red = false;
          RotateLeft(x->parent);
          x = root_;
        }
      } else {
        Node* w = x->parent->left;
        if (w->red) {
          w->red = false;
          x->parent->red = true;
          RotateRight(x->parent);
          w = x->parent->left;
        }
        if (!w->right->red && !w->left->red) {
          w->red = true;
          x = x->parent;
        } else {
          if (!w->left->red) {
            w->right->red = false;
            w->red = true;
            RotateLeft(w);
            w = x->parent->left;
          }
          w->red = x->parent->red;
          x->parent->red = false;
          w->left->red = false;
          RotateRight(x->parent);
          x = root_;
        }
      }
    }
    x->red = false;
  }

  Node* Minimum(Node* n) {
    while (n != nil_ && n->left != nil_) n = n->left;
    return n;
  }
  const Node* Minimum(const Node* n) const {
    while (n != nil_ && n->left != nil_) n = n->left;
    return n;
  }

  const Node* Successor(const Node* n) const {
    if (n->right != nil_) return Minimum(n->right);
    const Node* p = n->parent;
    while (p != nil_ && n == p->right) {
      n = p;
      p = p->parent;
    }
    return p;
  }

  void DeleteAll() {
    // Iterative post-order destruction; recursion would overflow on large
    // degenerate chains during fuzzing.
    Node* cur = root_;
    while (cur != nil_) {
      if (cur->left != nil_) {
        cur = cur->left;
      } else if (cur->right != nil_) {
        cur = cur->right;
      } else {
        Node* parent = cur->parent;
        if (parent != nil_) {
          if (parent->left == cur) {
            parent->left = nil_;
          } else {
            parent->right = nil_;
          }
        }
        delete cur;
        cur = parent;
      }
    }
  }

  // Returns the black-height of `n`'s subtree, asserting RB invariants.
  int CheckSubtree(const Node* n) const {
    if (n == nil_) return 1;
    if (n->red) {
      assert(!n->left->red && !n->right->red && "red node with red child");
    }
    if (n->left != nil_) {
      assert(!cmp_(n->key, n->left->key) && "left child out of order");
    }
    if (n->right != nil_) {
      assert(!cmp_(n->right->key, n->key) && "right child out of order");
    }
    int lh = CheckSubtree(n->left);
    int rh = CheckSubtree(n->right);
    assert(lh == rh && "black-height mismatch");
    (void)rh;
    return lh + (n->red ? 0 : 1);
  }

  Node* root_ = nullptr;
  Node* nil_ = nullptr;
  size_t size_ = 0;
  Compare cmp_{};
};

}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_RB_TREE_MAP_H_
