#include "containers/sparse_vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpa::containers {

SparseVector SparseVector::FromPairs(
    std::vector<std::pair<uint32_t, float>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector v;
  v.Reserve(pairs.size());
  for (const auto& [id, value] : pairs) v.PushBack(id, value);
  return v;
}

void SparseVector::PushBack(uint32_t id, float value) {
  assert(ids_.empty() || id > ids_.back());
  ids_.push_back(id);
  values_.push_back(value);
}

float SparseVector::ValueOf(uint32_t id) const {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return 0.0f;
  return values_[static_cast<size_t>(it - ids_.begin())];
}

double SparseVector::SquaredL2Norm() const {
  double sum = 0.0;
  for (float v : values_) sum += static_cast<double>(v) * v;
  return sum;
}

void SparseVector::NormalizeL2() {
  double sq = SquaredL2Norm();
  if (sq <= 0.0) return;
  float inv = static_cast<float>(1.0 / std::sqrt(sq));
  for (float& v : values_) v *= inv;
}

double Dot(const SparseVector& a, const SparseVector& b) {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.nnz() && j < b.nnz()) {
    uint32_t ai = a.id_at(i), bj = b.id_at(j);
    if (ai == bj) {
      sum += static_cast<double>(a.value_at(i)) * b.value_at(j);
      ++i;
      ++j;
    } else if (ai < bj) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double Dot(const SparseVector& a, const std::vector<float>& dense) {
  double sum = 0.0;
  for (size_t i = 0; i < a.nnz(); ++i) {
    uint32_t id = a.id_at(i);
    if (id < dense.size()) {
      sum += static_cast<double>(a.value_at(i)) * dense[id];
    }
  }
  return sum;
}

void AddScaled(const SparseVector& a, float scale, std::vector<float>& dense) {
  for (size_t i = 0; i < a.nnz(); ++i) {
    assert(a.id_at(i) < dense.size());
    dense[a.id_at(i)] += scale * a.value_at(i);
  }
}

double SquaredDistance(const SparseVector& x, double x_sq_norm,
                       const std::vector<float>& centroid,
                       double centroid_sq_norm) {
  double d = x_sq_norm - 2.0 * Dot(x, centroid) + centroid_sq_norm;
  // Rounding can push tiny distances negative; clamp for callers that sqrt.
  return d < 0.0 ? 0.0 : d;
}

}  // namespace hpa::containers
