#ifndef HPA_CONTAINERS_SPARSE_MATRIX_H_
#define HPA_CONTAINERS_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "containers/sparse_vector.h"

/// \file
/// A row-major sparse matrix: one SparseVector per row. This is the
/// intermediate dataset of the TF/IDF -> K-means workflow (one row of
/// TF/IDF scores per document).

namespace hpa::containers {

/// Sparse matrix with a fixed column count (vocabulary size).
struct SparseMatrix {
  uint32_t num_cols = 0;
  std::vector<SparseVector> rows;

  size_t num_rows() const { return rows.size(); }

  /// Total stored non-zeros.
  uint64_t TotalNnz() const {
    uint64_t total = 0;
    for (const SparseVector& r : rows) total += r.nnz();
    return total;
  }

  /// Heap bytes across all rows.
  uint64_t ApproxMemoryBytes() const {
    uint64_t total = rows.capacity() * sizeof(SparseVector);
    for (const SparseVector& r : rows) total += r.ApproxMemoryBytes();
    return total;
  }

  friend bool operator==(const SparseMatrix& a, const SparseMatrix& b) {
    return a.num_cols == b.num_cols && a.rows == b.rows;
  }
};

}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_SPARSE_MATRIX_H_
