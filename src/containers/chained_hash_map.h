#ifndef HPA_CONTAINERS_CHAINED_HASH_MAP_H_
#define HPA_CONTAINERS_CHAINED_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "containers/hash.h"

/// \file
/// A from-scratch chained (separate-chaining) hash map that mirrors the
/// memory behaviour of `std::unordered_map`: a sparse bucket-pointer array
/// plus one heap node per element, rehashing when the load factor exceeds
/// 1.0. The paper's Figure 4 attributes the u-map's poor insert performance
/// and 12.8 GB footprint to exactly these properties, so this implementation
/// instruments both (rehash count, allocated bytes).

namespace hpa::containers {

/// Unordered map with O(1) expected lookup, chained collisions.
///
/// Template parameters mirror RbTreeMap; `Hash` must accept both `Key` and
/// any heterogeneous lookup type (the default string hasher takes
/// `std::string_view`).
template <typename Key, typename Value, typename Hash = DefaultHash<Key>>
class ChainedHashMap {
 public:
  /// \param initial_buckets bucket-array size hint; the paper pre-sizes its
  ///   per-document tables to 4K entries ("pre-sized to hold 4K items to
  ///   minimize resizing overhead").
  explicit ChainedHashMap(size_t initial_buckets = 16)
      : buckets_(NormalizeBucketCount(initial_buckets), nullptr) {}

  ChainedHashMap(const ChainedHashMap&) = delete;
  ChainedHashMap& operator=(const ChainedHashMap&) = delete;

  ChainedHashMap(ChainedHashMap&& other) noexcept
      : buckets_(std::move(other.buckets_)),
        size_(other.size_),
        rehash_count_(other.rehash_count_) {
    other.buckets_.assign(16, nullptr);
    other.size_ = 0;
    other.rehash_count_ = 0;
  }
  ChainedHashMap& operator=(ChainedHashMap&& other) noexcept {
    if (this != &other) {
      Clear();
      buckets_ = std::move(other.buckets_);
      size_ = other.size_;
      rehash_count_ = other.rehash_count_;
      other.buckets_.assign(16, nullptr);
      other.size_ = 0;
      other.rehash_count_ = 0;
    }
    return *this;
  }

  ~ChainedHashMap() { Clear(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t bucket_count() const { return buckets_.size(); }
  uint64_t rehash_count() const { return rehash_count_; }

  /// Returns the value for `key`, inserting a default if absent. Triggers a
  /// rehash (doubling) when the load factor would exceed 1.0.
  template <typename K>
  Value& FindOrInsert(const K& key) {
    size_t h = hash_(key);
    size_t b = h & (buckets_.size() - 1);
    for (Node* n = buckets_[b]; n != nullptr; n = n->next) {
      if (n->key == key) return n->value;
    }
    if (size_ + 1 > buckets_.size()) {
      Rehash(buckets_.size() * 2);
      b = h & (buckets_.size() - 1);
    }
    Node* node = new Node{Key(key), Value{}, buckets_[b]};
    buckets_[b] = node;
    ++size_;
    return node->value;
  }

  template <typename K>
  const Value* Find(const K& key) const {
    size_t b = hash_(key) & (buckets_.size() - 1);
    for (const Node* n = buckets_[b]; n != nullptr; n = n->next) {
      if (n->key == key) return &n->value;
    }
    return nullptr;
  }

  template <typename K>
  Value* Find(const K& key) {
    return const_cast<Value*>(
        static_cast<const ChainedHashMap*>(this)->Find(key));
  }

  template <typename K>
  bool Contains(const K& key) const {
    return Find(key) != nullptr;
  }

  /// Removes `key`; returns false if absent.
  template <typename K>
  bool Erase(const K& key) {
    size_t b = hash_(key) & (buckets_.size() - 1);
    Node** link = &buckets_[b];
    while (*link != nullptr) {
      if ((*link)->key == key) {
        Node* dead = *link;
        *link = dead->next;
        delete dead;
        --size_;
        return true;
      }
      link = &(*link)->next;
    }
    return false;
  }

  /// Removes all entries; keeps the bucket array at its current size (so a
  /// pre-sized, recycled table stays pre-sized).
  void Clear() {
    for (Node*& head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        delete head;
        head = next;
      }
    }
    size_ = 0;
  }

  /// Grows the bucket array to hold `n` elements without rehashing.
  void Reserve(size_t n) {
    size_t want = NormalizeBucketCount(n);
    if (want > buckets_.size()) Rehash(want);
  }

  /// Unordered traversal: fn(key, value).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Node* head : buckets_) {
      for (const Node* n = head; n != nullptr; n = n->next) {
        fn(n->key, n->value);
      }
    }
  }

  /// False: traversal order is bucket order, not key order; callers must
  /// sort if they need ordered output (the cost the paper's §3.4 weighs).
  static constexpr bool kSortedIteration = false;

  /// Bucket array + nodes + owned key/value heap.
  uint64_t ApproxMemoryBytes() const {
    uint64_t bytes = buckets_.capacity() * sizeof(Node*);
    for (const Node* head : buckets_) {
      for (const Node* n = head; n != nullptr; n = n->next) {
        bytes += sizeof(Node) + internal_hash::OwnedHeapBytes(n->key) +
                 internal_hash::OwnedHeapBytes(n->value);
      }
    }
    return bytes;
  }

 private:
  struct Node {
    Key key;
    Value value{};
    Node* next = nullptr;
  };

  static size_t NormalizeBucketCount(size_t n) {
    size_t p = 16;
    while (p < n) p <<= 1;
    return p;
  }

  void Rehash(size_t new_buckets) {
    std::vector<Node*> fresh(new_buckets, nullptr);
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        size_t b = hash_(head->key) & (new_buckets - 1);
        head->next = fresh[b];
        fresh[b] = head;
        head = next;
      }
    }
    buckets_.swap(fresh);
    ++rehash_count_;
  }

  std::vector<Node*> buckets_;
  size_t size_ = 0;
  uint64_t rehash_count_ = 0;
  Hash hash_{};
};

}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_CHAINED_HASH_MAP_H_
