#ifndef HPA_CONTAINERS_SHARDED_DICT_H_
#define HPA_CONTAINERS_SHARDED_DICT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "containers/hash.h"

/// \file
/// A hash-partitioned dictionary: S independent shards of any of the five
/// uniform dictionary backends, with keys routed by the top bits of the
/// shared FNV-1a hash. This is the container behind the parallel reduction
/// layer (parallel/parallel_ops.h): per-worker partial dictionaries are
/// sharded identically, so shard s of the merged result can be produced by
/// one task reading shard s of *every* partial — no locks, no atomics, the
/// whole merge is embarrassingly parallel across shards.
///
/// The shard count is a fixed power of two chosen independently of the
/// worker count, so the merged structure (and therefore its ForEach
/// iteration order) is byte-identical no matter how many workers built it.
/// Routing uses the *top* hash bits; the backends mask the *low* bits for
/// their own bucket arrays, so sharding does not degrade their probe
/// distributions.

namespace hpa::containers {

/// Number of shards used by default. 64 keeps per-shard merge slices well
/// above cache-line granularity at paper-scale vocabularies (≈3–4K words
/// per shard for NSF's 268K) while still load-balancing 16 workers.
inline constexpr size_t kDefaultDictShards = 64;

/// Hash-partitioned wrapper composing any uniform dictionary backend.
/// Exposes the same surface as the five backends (FindOrInsert / Find /
/// Contains / Erase / size / Clear / Reserve / ForEach /
/// ApproxMemoryBytes / kSortedIteration) so it drops into the operators'
/// `DictFor`-typed pipelines, plus shard-level access for the parallel
/// merge layer.
template <typename Shard>
class ShardedDict {
 public:
  explicit ShardedDict(size_t capacity_hint = 0,
                       size_t num_shards = kDefaultDictShards) {
    // Round the shard count up to a power of two for mask-free routing.
    size_t shards = 1;
    size_t bits = 0;
    while (shards < num_shards) {
      shards <<= 1;
      ++bits;
    }
    shard_bits_ = bits;
    shards_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      shards_.emplace_back(Shard(capacity_hint / shards));
    }
  }

  ShardedDict(const ShardedDict&) = delete;
  ShardedDict& operator=(const ShardedDict&) = delete;
  ShardedDict(ShardedDict&&) noexcept = default;
  ShardedDict& operator=(ShardedDict&&) noexcept = default;

  size_t num_shards() const { return shards_.size(); }

  /// Shard that owns `key`: the top `log2(num_shards)` bits of the key
  /// hash. Deterministic in the key alone — never in the worker count.
  size_t ShardOf(std::string_view key) const {
    if (shard_bits_ == 0) return 0;
    return static_cast<size_t>(HashBytes(key.data(), key.size()) >>
                               (64 - shard_bits_));
  }

  Shard& shard(size_t s) { return shards_[s]; }
  const Shard& shard(size_t s) const { return shards_[s]; }

  decltype(auto) FindOrInsert(std::string_view key) {
    return shards_[ShardOf(key)].FindOrInsert(key);
  }

  auto Find(std::string_view key) const {
    return shards_[ShardOf(key)].Find(key);
  }

  bool Contains(std::string_view key) const { return Find(key) != nullptr; }

  bool Erase(std::string_view key) {
    return shards_[ShardOf(key)].Erase(key);
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& s : shards_) total += s.size();
    return total;
  }
  bool empty() const { return size() == 0; }

  void Clear() {
    for (Shard& s : shards_) s.Clear();
  }

  /// Splits the capacity hint evenly across shards (hash routing spreads
  /// keys near-uniformly, so an even split is the right presize).
  void Reserve(size_t n) {
    size_t per_shard = (n + shards_.size() - 1) / shards_.size();
    for (Shard& s : shards_) s.Reserve(per_shard);
  }

  /// Walks shards in index order, each shard in its backend's order. The
  /// composite order is deterministic but not globally key-sorted, even
  /// over sorted shards — hash partitioning interleaves the key space.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Shard& s : shards_) s.ForEach(fn);
  }

  static constexpr bool kSortedIteration = false;

  uint64_t ApproxMemoryBytes() const {
    uint64_t bytes = 0;
    for (const Shard& s : shards_) bytes += s.ApproxMemoryBytes();
    return bytes;
  }

 private:
  std::vector<Shard> shards_;
  size_t shard_bits_ = 0;
};

}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_SHARDED_DICT_H_
