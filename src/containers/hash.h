#ifndef HPA_CONTAINERS_HASH_H_
#define HPA_CONTAINERS_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// Hash functions and memory-accounting helpers shared by the container
/// implementations.

namespace hpa::containers {

/// FNV-1a over a byte range: simple, deterministic across platforms, good
/// enough distribution for power-of-two bucket arrays when mixed.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  // Final avalanche (from SplitMix64) so low bits are well mixed for
  // power-of-two masking.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  return h;
}

/// Default hasher; the string specialization is transparent (accepts
/// string_view, string, and const char* without conversion).
template <typename Key>
struct DefaultHash {
  size_t operator()(const Key& key) const {
    return static_cast<size_t>(HashBytes(&key, sizeof(Key)));
  }
};

template <>
struct DefaultHash<std::string> {
  size_t operator()(std::string_view key) const {
    return static_cast<size_t>(HashBytes(key.data(), key.size()));
  }
};

namespace internal_hash {

/// Approximate heap bytes owned by a key/value beyond its inline size.
inline uint64_t OwnedHeapBytes(const std::string& s) {
  // libstdc++ SSO keeps up to 15 chars inline.
  return s.capacity() > 15 ? s.capacity() + 1 : 0;
}
template <typename T>
uint64_t OwnedHeapBytes(const T&) {
  return 0;
}

}  // namespace internal_hash
}  // namespace hpa::containers

#endif  // HPA_CONTAINERS_HASH_H_
